// Benchmarks regenerating every experiment table of the evaluation
// (DESIGN.md §4). Each BenchmarkE* runs the corresponding experiment; the
// tables themselves are printed by cmd/benchtables. Micro-benchmarks for the
// hot primitives (fingerprint estimation/encoding, color trials, matching)
// follow.
package clustercolor

import (
	"fmt"
	"runtime"
	"testing"

	"clustercolor/internal/acd"
	"clustercolor/internal/benchwork"
	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/experiments"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/graph"
	"clustercolor/internal/matching"
	"clustercolor/internal/network"
	"clustercolor/internal/trials"
)

func benchTable(b *testing.B, run func(seed uint64) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := run(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1HighDegreeRounds(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E1HighDegreeRounds([]int{30, 60, 120}, seed)
	})
}

func BenchmarkE2LowDegreeRounds(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E2LowDegreeRounds([]int{200, 400, 800}, seed)
	})
}

func BenchmarkE3FingerprintAccuracy(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E3FingerprintAccuracy([]int{64, 256, 1024}, 500, 20, seed)
	})
}

func BenchmarkE4FingerprintEncoding(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E4FingerprintEncoding([]int{64, 256}, []int{16, 1024, 65536}, seed)
	})
}

func BenchmarkE5ACDQuality(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E5ACDQuality([]int{30, 60}, seed)
	})
}

func BenchmarkE6SlackGeneration(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E6SlackGeneration([]int{50, 100, 200, 400}, seed)
	})
}

func BenchmarkE7CabalMatching(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E7CabalMatching(80, []int{0, 2, 6, 12}, seed)
	})
}

func BenchmarkE8PutAside(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E8PutAside([]int{40, 80, 160}, 4, seed)
	})
}

func BenchmarkE9SCT(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E9SCT(60, []int{1, 3, 6, 10}, seed)
	})
}

func BenchmarkE10Bandwidth(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E10Bandwidth([]int{200, 400}, seed)
	})
}

func BenchmarkE11Dilation(b *testing.B) {
	h := graph.MustGNP(100, 0.1, graph.NewRand(1))
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E11Dilation(h, []int{1, 4, 8, 16}, seed)
	})
}

func BenchmarkE12Baselines(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E12Baselines([]int{200, 400}, seed)
	})
}

func BenchmarkE13TryColor(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E13TryColor(400, 8, seed)
	})
}

func BenchmarkE14PaletteQuery(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E14PaletteQuery(40, 25, seed)
	})
}

func BenchmarkE15Distance2(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E15Distance2([]int{100, 200}, seed)
	})
}

// --- ablation benches (DESIGN.md §4, A1–A5) -------------------------------

func BenchmarkA1EncodingAblation(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.A1Encoding([]int{64, 256, 1024}, 5000, 48, seed)
	})
}

func BenchmarkA2MatchingAblation(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.A2CabalMatching(70, 8, 3, seed)
	})
}

func BenchmarkA3PutAsideAblation(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.A3PutAside(300, 4, 14, seed)
	})
}

func BenchmarkA4MCTAblation(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.A4MCTGrowth(40, seed)
	})
}

func BenchmarkA5ReservedAblation(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.A5ReservedFraction([]float64{0.05, 0.2, 0.5}, seed)
	})
}

// --- engine and runner benchmarks ---------------------------------------
// The workloads live in internal/benchwork, shared with the benchtables
// -enginebench emitter so BENCH_engine.json stays comparable to these.

// BenchmarkEngineStep measures one synchronous round on a 10k-machine GNP
// network under the pooled scheduler and the legacy goroutine-per-machine
// baseline. The pooled scheduler must win on both ns/op and allocs/op.
func BenchmarkEngineStep(b *testing.B) {
	const machines = 10000
	g := graph.MustGNP(machines, 8.0/machines, graph.NewRand(9))
	for _, s := range []struct {
		name  string
		sched network.Scheduler
	}{
		{"pooled", network.SchedulerPooled},
		{"spawn", network.SchedulerSpawn},
	} {
		b.Run(s.name, func(b *testing.B) {
			eng, err := network.NewEngineWithScheduler(g, benchwork.GossipMachines(g), 0, s.sched)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExperimentRunner measures a cross-section of the experiment
// battery at sequential and full parallelism; the emitted tables are
// identical, only the wall clock changes.
func BenchmarkExperimentRunner(b *testing.B) {
	pars := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		pars = append(pars, p)
	}
	for _, par := range pars {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			prev := experiments.SetParallelism(par)
			defer experiments.SetParallelism(prev)
			for i := 0; i < b.N; i++ {
				for _, run := range benchwork.BatteryCrossSection(uint64(i) + 1) {
					tbl, err := run()
					if err != nil {
						b.Fatal(err)
					}
					if len(tbl.Rows) == 0 {
						b.Fatal("empty table")
					}
				}
			}
		})
	}
}

// BenchmarkGraphGen measures the O(n+m) instance generators at the scales
// the ROADMAP's scenarios need, up to a million vertices. The workloads live
// in internal/benchwork, shared with the benchtables -graphbench emitter so
// BENCH_graph.json stays comparable to these. GNP and geometric run at two
// sizes a decade apart: linear scaling shows as ≈10× ns/op between them.
func BenchmarkGraphGen(b *testing.B) {
	for _, w := range benchwork.GraphGenWorkloads() {
		b.Run(w.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := w.Gen(uint64(i) + 1)
				if err != nil {
					b.Fatal(err)
				}
				if g.N() != w.N {
					b.Fatalf("generated %d vertices, want %d", g.N(), w.N)
				}
			}
		})
	}
}

// BenchmarkColor measures the full coloring pipeline per stage-level
// workload (internal/benchwork.ColorWorkloads, shared with the benchtables
// -colorbench emitter so BENCH_color.json stays comparable). allocs/op here
// is the headline number the bitset palette machinery is accountable for.
func BenchmarkColor(b *testing.B) {
	for _, w := range benchwork.ColorWorkloads() {
		b.Run(w.Name, func(b *testing.B) {
			h, err := w.Build()
			if err != nil {
				b.Fatal(err)
			}
			params := w.Params(h.N())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := benchwork.RunColor(h, params, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				if stats.Rounds <= 0 {
					b.Fatal("no rounds charged")
				}
			}
		})
	}
}

// BenchmarkACD measures the arena-backed decomposition stack (ComputeWith +
// BuildProfileWith) on the shared workload matrix, reusing one workspace so
// the timings reflect the steady state. Workloads above 10⁵ vertices are
// left to the benchtables -acdbench emitter (BENCH_acd.json): the go-test
// benchmark also runs in the CI bench smoke, which cannot afford the
// million-vertex arenas.
func BenchmarkACD(b *testing.B) {
	for _, w := range benchwork.ACDWorkloads() {
		if w.N > 100_000 {
			continue
		}
		b.Run(w.Name, func(b *testing.B) {
			h, err := w.Build()
			if err != nil {
				b.Fatal(err)
			}
			cg, err := benchwork.NewACDInstance(h, 1)
			if err != nil {
				b.Fatal(err)
			}
			ws := acd.NewWorkspace()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := benchwork.RunACDOnce(cg, w.Eps, uint64(i)+1, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPaletteOps measures the palette primitives on the shared GNP
// deg≈64 fixture: the caller-owned PaletteScratch paths must report zero
// allocs/op, and the package-level wrappers at most one (Palette's result).
// The case table lives in internal/benchwork, shared with the benchtables
// -colorbench emitter.
func BenchmarkPaletteOps(b *testing.B) {
	g, col, err := benchwork.PaletteOpsFixture(100_000)
	if err != nil {
		b.Fatal(err)
	}
	cases, err := benchwork.PaletteOpCases(g, col)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range cases {
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Op(i)
			}
		})
	}
}

// --- micro-benchmarks ---------------------------------------------------

func BenchmarkFullPipelineHighDegree(b *testing.B) {
	h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
		NumCliques:     3,
		CliqueSize:     60,
		DropFraction:   0.04,
		ExternalDegree: 3,
		SparseN:        60,
		SparseP:        0.1,
	}, graph.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Color(h, Options{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Rounds()
	}
}

func BenchmarkFullPipelineLowDegree(b *testing.B) {
	h := graph.MustGNP(800, 6.0/800, graph.NewRand(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Color(h, Options{Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFingerprintEstimate(b *testing.B) {
	rng := graph.NewRand(3)
	s := fingerprint.NewSketch(256)
	for j := 0; j < 1000; j++ {
		_ = s.AddSamples(fingerprint.NewSamples(256, rng))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Estimate()
	}
}

func BenchmarkFingerprintEncodeDecode(b *testing.B) {
	rng := graph.NewRand(4)
	s := fingerprint.NewSketch(256)
	for j := 0; j < 1000; j++ {
		_ = s.AddSamples(fingerprint.NewSamples(256, rng))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := s.Encode()
		if _, err := fingerprint.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCG(b *testing.B, h *graph.Graph) *cluster.CG {
	b.Helper()
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, graph.NewRand(5))
	if err != nil {
		b.Fatal(err)
	}
	cost, err := network.NewCostModel(48)
	if err != nil {
		b.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		b.Fatal(err)
	}
	return cg
}

func BenchmarkTryColorRound(b *testing.B) {
	h := graph.MustGNP(1000, 0.02, graph.NewRand(6))
	cg := benchCG(b, h)
	space := trials.RangeSpace(1, int32(h.MaxDegree()+1))
	rng := graph.NewRand(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := coloring.New(h.N(), h.MaxDegree())
		if _, err := trials.TryColorRound(cg, col, trials.TryColorOptions{
			Phase:      "bench",
			Activation: 0.5,
			Space:      func(v int) []int32 { return space },
		}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFingerprintMatching(b *testing.B) {
	n := 100
	bd := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			anti := v == u+1 && u%2 == 0 && u/2 < 8
			if !anti {
				if err := bd.AddEdge(u, v); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	h := bd.Build()
	cg := benchCG(b, h)
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	rng := graph.NewRand(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matching.FingerprintMatching(cg, matching.FingerprintOptions{
			Phase:   "bench",
			Members: members,
			Trials:  80,
		}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCliquePaletteBuild(b *testing.B) {
	h := graph.Clique(200)
	cg := benchCG(b, h)
	col := coloring.New(200, 199)
	for v := 0; v < 150; v++ {
		_ = col.Set(v, int32(v+1))
	}
	members := make([]int, 200)
	for i := range members {
		members[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := coloring.BuildCliquePalette(cg, col, members)
		if cp.FreeCount() == 0 {
			b.Fatal("no free colors")
		}
	}
}

func BenchmarkE16VirtualDistance2(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E16VirtualDistance2([]int{100}, seed)
	})
}

func BenchmarkE17Linial(b *testing.B) {
	benchTable(b, func(seed uint64) (*experiments.Table, error) {
		return experiments.E17Linial(1500, 2.0, seed)
	})
}
