// Package clustercolor is a library for (Δ+1)-coloring cluster graphs,
// reproducing "Decentralized Distributed Graph Coloring: Cluster Graphs"
// (Flin, Halldórsson, Nolin — PODC 2025, arXiv:2405.07725).
//
// A cluster graph H is a graph whose vertices are disjoint connected
// clusters of machines in an underlying communication network G with
// O(log n)-bit links. The library simulates that model faithfully — every
// algorithmic step charges rounds and bandwidth to a cost model — and runs
// the paper's full pipeline: fingerprint-based almost-clique decomposition,
// slack generation, synchronized color trials, colorful matchings (with the
// cabal fingerprint matching of Section 6), put-aside sets with the 3-way
// donation scheme of Section 7, and the low-degree shattering pipeline of
// Section 9.
//
// Quickstart:
//
//	h, err := clustercolor.GNP(1000, 0.05, 42)
//	if err != nil { ... }
//	res, err := clustercolor.Color(h, clustercolor.Options{Seed: 1})
//	if err != nil { ... }
//	fmt.Println(res.Rounds(), res.NumColors())
package clustercolor

import (
	"fmt"
	"math/bits"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/core"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

// Graph is an input graph to color. Construct with NewGraphBuilder or one of
// the generators (GNP, Clique, PlantedACD, ...).
type Graph = graph.Graph

// GraphBuilder builds input graphs edge by edge.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph on n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// GNP samples an Erdős–Rényi graph G(n, p) with a deterministic seed, in
// O(n + m) expected time. It returns an error for p outside [0,1] (NaN
// included) instead of silently producing a degenerate graph.
func GNP(n int, p float64, seed uint64) (*Graph, error) {
	return graph.GNP(n, p, graph.NewRand(seed))
}

// Clique returns the complete graph K_n. It panics if n(n-1)/2 exceeds the
// graph substrate's ~2³⁰-edge capacity (n > ~46000).
func Clique(n int) *Graph { return graph.Clique(n) }

// RandomGeometric samples a wireless-style random geometric graph: n points
// in the unit square, edges within the given radius (grid-bucketed,
// O(n + m) expected time). Invalid radii (negative, NaN, Inf) are an error.
func RandomGeometric(n int, radius float64, seed uint64) (*Graph, error) {
	g, _, err := graph.RandomGeometric(n, radius, graph.NewRand(seed))
	return g, err
}

// BarabasiAlbert grows a preferential-attachment power-law graph: each new
// vertex attaches to `attach` distinct existing vertices chosen
// proportionally to degree — the hub-and-spoke scenario complementing GNP's
// concentrated degrees.
func BarabasiAlbert(n, attach int, seed uint64) (*Graph, error) {
	return graph.BarabasiAlbert(n, attach, graph.NewRand(seed))
}

// RandomRegular samples a uniform-ish d-regular graph on n vertices via the
// pairing model. n·d must be even and d < n.
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	return graph.RandomRegular(n, d, graph.NewRand(seed))
}

// RingOfCliques returns numCliques cliques of cliqueSize vertices joined in
// a ring by single bridge edges: maximal local density with minimal
// expansion.
func RingOfCliques(numCliques, cliqueSize int) (*Graph, error) {
	return graph.RingOfCliques(numCliques, cliqueSize)
}

// PlantedACDSpec parameterizes PlantedACD.
type PlantedACDSpec = graph.PlantedACDSpec

// PlantedACD samples an instance with planted almost-cliques: dense blocks
// with a fraction of internal edges dropped and a few external edges per
// member, plus a sparse G(n, p) background — the ground-truth scenario for
// decomposition experiments. It returns the graph and the planted block id
// per vertex (-1 for background vertices).
func PlantedACD(spec PlantedACDSpec, seed uint64) (*Graph, []int, error) {
	return graph.PlantedACD(spec, graph.NewRand(seed))
}

// Power returns the k-th power of g (distance-k conflict graph); k must be
// >= 1.
func Power(g *Graph, k int) (*Graph, error) { return g.Power(k) }

// Topology selects how each input vertex expands into a cluster of machines
// in the communication network.
type Topology int

const (
	// Singleton puts one machine per cluster: the CONGEST case H = G.
	Singleton Topology = iota + 1
	// PathCluster wires each cluster as a path (worst dilation).
	PathCluster
	// StarCluster wires each cluster as a star (dilation 2).
	StarCluster
	// TreeCluster wires each cluster as a random tree.
	TreeCluster
)

func (t Topology) expandTopology() graph.ClusterTopology {
	switch t {
	case PathCluster:
		return graph.TopologyPath
	case StarCluster:
		return graph.TopologyStar
	case TreeCluster:
		return graph.TopologyTree
	default:
		return graph.TopologySingleton
	}
}

// Options configures a coloring run.
type Options struct {
	// Topology is the cluster wiring (default Singleton).
	Topology Topology
	// MachinesPerCluster sizes each cluster (default 1; ignored for
	// Singleton).
	MachinesPerCluster int
	// RedundantLinks is the number of parallel network links per input
	// edge (default 1). Higher values exercise the double-counting
	// hazards the paper's aggregation primitives are designed for.
	RedundantLinks int
	// BandwidthBits is the per-link per-round budget (default
	// 2·⌈log₂ n⌉ + 16, the model's Θ(log n)).
	BandwidthBits int
	// Params tunes the algorithm; the zero value selects DefaultParams
	// (a zero Params is never valid on its own, so this is unambiguous —
	// see core.Params.IsZero).
	Params core.Params
	// Shards routes the decomposition stage through the partitioned
	// substrate: the graph splits into this many contiguous vertex slices
	// with explicit boundary exchanges between sketch waves. 0 or 1 keeps
	// the single-address-space path; the coloring and charged rounds are
	// byte-identical either way. Overrides Params.Shards when positive.
	Shards int
	// Seed drives all randomness (expansion and algorithm). It always
	// takes effect — 0 is a valid explicit seed, not "unset" — and
	// overrides Params.Seed.
	Seed uint64
}

// resolveParams returns opts.Params with the zero value replaced by
// DefaultParams(n), and opts.Seed applied unconditionally.
func resolveParams(opts Options, n int) core.Params {
	params := opts.Params
	if params.IsZero() {
		params = core.DefaultParams(n)
	}
	params.Seed = opts.Seed
	if opts.Shards > 0 {
		params.Shards = opts.Shards
	}
	return params
}

// Result is a completed coloring run.
type Result struct {
	colors []int32
	stats  *core.Stats
	cost   *network.CostModel
}

// ColorOf returns the color of vertex v in [1, Δ+1].
func (r *Result) ColorOf(v int) int { return int(r.colors[v]) }

// Colors returns a copy of the full assignment (1-based colors).
func (r *Result) Colors() []int {
	out := make([]int, len(r.colors))
	for i, c := range r.colors {
		out[i] = int(c)
	}
	return out
}

// NumColors returns the number of distinct colors used.
func (r *Result) NumColors() int {
	seen := make(map[int32]struct{})
	for _, c := range r.colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// Rounds returns the total simulated communication rounds on the network.
func (r *Result) Rounds() int64 { return r.stats.Rounds }

// Stats exposes the detailed run statistics.
func (r *Result) Stats() *core.Stats { return r.stats }

// CostSummary renders the per-phase round breakdown.
func (r *Result) CostSummary() string { return r.cost.Summary() }

// DefaultBandwidth returns the Θ(log n) default link budget for n machines.
func DefaultBandwidth(n int) int {
	if n < 2 {
		n = 2
	}
	return 2*bits.Len(uint(n)) + 16
}

// Color computes a (Δ+1)-coloring of h under the given options and verifies
// it before returning.
func Color(h *Graph, opts Options) (*Result, error) {
	cg, cost, err := buildClusterGraph(h, opts)
	if err != nil {
		return nil, err
	}
	params := resolveParams(opts, h.N())
	col, stats, err := core.Color(cg, params)
	if err != nil {
		return nil, err
	}
	colors := make([]int32, h.N())
	for v := 0; v < h.N(); v++ {
		colors[v] = col.Get(v)
	}
	return &Result{colors: colors, stats: stats, cost: cost}, nil
}

// Verify checks that an assignment (1-based colors, as returned by
// Result.Colors) is a proper total coloring of h with at most Δ+1 colors.
func Verify(h *Graph, colors []int) error {
	if len(colors) != h.N() {
		return fmt.Errorf("clustercolor: %d colors for %d vertices", len(colors), h.N())
	}
	col := coloring.New(h.N(), h.MaxDegree())
	for v, c := range colors {
		if err := col.Set(v, int32(c)); err != nil {
			return fmt.Errorf("clustercolor: vertex %d: %w", v, err)
		}
	}
	return coloring.VerifyComplete(h, col)
}

func buildClusterGraph(h *Graph, opts Options) (*cluster.CG, *network.CostModel, error) {
	spec := graph.ExpandSpec{
		Topology:           opts.Topology.expandTopology(),
		MachinesPerCluster: opts.MachinesPerCluster,
		RedundantLinks:     opts.RedundantLinks,
	}
	if spec.MachinesPerCluster == 0 {
		spec.MachinesPerCluster = 1
	}
	exp, err := graph.Expand(h, spec, graph.NewRand(opts.Seed^0xa5a5a5a5))
	if err != nil {
		return nil, nil, err
	}
	bw := opts.BandwidthBits
	if bw == 0 {
		bw = DefaultBandwidth(exp.G.N())
	}
	cost, err := network.NewCostModel(bw)
	if err != nil {
		return nil, nil, err
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		return nil, nil, err
	}
	return cg, cost, nil
}
