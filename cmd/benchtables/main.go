// Command benchtables regenerates every experiment table of the evaluation
// (DESIGN.md §4, E1–E15) and prints them. Run with -id to select a subset.
//
//	benchtables                      # the full battery
//	benchtables -id E7,E8            # selected experiments
//	benchtables -seed 9              # different randomness
//	benchtables -parallel 1          # sequential reference run (same output)
//	benchtables -enginebench out.json  # emit engine benchmarks instead
//	benchtables -graphbench out.json   # emit graph-generator benchmarks instead
//	benchtables -colorbench out.json   # emit stage-level coloring benchmarks instead
//	benchtables -distsimbench out.json # emit machine-granularity conformance benchmarks instead
//	benchtables -acdbench out.json     # emit decomposition benchmarks instead (-acdn caps size)
//	benchtables -sketchbench out.json  # emit sketch-engine benchmarks instead (-sketchn caps size)
//	benchtables -shardbench out.json   # emit partitioned-substrate benchmarks instead (-shardn caps size, -shardstream adds streaming rows)
//	benchtables -speedupbench out.json # emit per-stage speedup curves instead (-speedupn caps size, -speedupgrid picks levels)
//	benchtables -compare old.json new.json # print a per-row delta table between two artifacts of the same schema
//
// Tables are computed by a parallel runner that fans experiments and their
// rows across CPUs; the output is byte-identical for every -parallel value.
// -enginebench benchmarks the round engine (pooled vs spawn scheduler) and
// the experiment runner, and writes a machine-readable JSON report
// (conventionally BENCH_engine.json). -graphbench does the same for the
// O(n+m) instance generators (conventionally BENCH_graph.json), and
// -colorbench for the coloring pipeline itself with per-stage round
// breakdowns and palette micro-benchmarks (conventionally BENCH_color.json).
// -acdbench benchmarks the fingerprint→ACD→profile decomposition stack
// (conventionally BENCH_acd.json) with dense/sparse/cabal counts and peak
// sketch payloads per workload. -sketchbench benchmarks the mergeable-sketch
// engine itself (conventionally BENCH_sketch.json): the isolated SWAR merge
// kernel against its scalar reference, collect waves at parallelism
// 1/2/4/NumCPU, and bits-per-vertex plus accuracy for every estimator
// variant. -shardbench benchmarks the partitioned execution substrate
// (conventionally BENCH_shard.json): the decomposition at shard counts
// 1/2/4/8 × parallelism 1/2/4/NumCPU against an unsharded reference, with
// charged rounds asserted shard-invariant and the cross-shard
// boundary-exchange traffic reported per cell. Adding -shardstream N emits
// streaming-construction rows: GNP edge streams partitioned into slices with
// no global CSR, up to n = N, with partition cost, peak slice footprint, and
// a digest cross-check against the materialized path at the overlap size.
// -speedupbench measures the per-stage scaling surface (conventionally
// BENCH_speedup.json): decompose, matchings, SCTs, palettes, donation,
// low-degree, sketch collect, and sharded boundary exchange, each timed at
// parallelism 1/2/4/NumCPU with speedup-vs-serial per point; the stage
// outputs are byte-identical across levels, so the curves move wall-clock
// only.
// Parallelism grids are honest: every row records its effective
// min(parallelism, GOMAXPROCS), and cells requesting more workers than
// GOMAXPROCS can schedule are skipped with a note on stderr. A grid that
// collapses to a single effective level annotates the report header with
// degraded_grid=true; under -require-full-grid the emitter refuses instead,
// so CI can assert that published artifacts really measured a multi-level
// surface.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"clustercolor/internal/experiments"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "random seed")
		ids        = flag.String("id", "", "comma-separated experiment ids (empty = all)")
		ablations  = flag.Bool("ablations", false, "also run the ablation battery (A1–A5)")
		format     = flag.String("format", "table", "output format: table | csv")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment runner parallelism (1 = sequential)")
		benchOut   = flag.String("enginebench", "", "run engine benchmarks and write BENCH_engine.json to this path ('-' = stdout), then exit")
		benchN     = flag.Int("benchn", 10000, "machine count for -enginebench")
		graphOut   = flag.String("graphbench", "", "run graph-generator benchmarks and write BENCH_graph.json to this path ('-' = stdout), then exit")
		colorOut   = flag.String("colorbench", "", "run stage-level coloring benchmarks and write BENCH_color.json to this path ('-' = stdout), then exit")
		distsimOut = flag.String("distsimbench", "", "run the machine-granularity conformance benchmarks and write BENCH_distsim.json to this path ('-' = stdout), then exit")
		acdOut     = flag.String("acdbench", "", "run decomposition benchmarks and write BENCH_acd.json to this path ('-' = stdout), then exit")
		acdN       = flag.Int("acdn", 0, "skip -acdbench workloads with more than this many vertices (0 = no cap; CI smoke uses a small cap)")
		sketchOut  = flag.String("sketchbench", "", "run sketch-engine benchmarks and write BENCH_sketch.json to this path ('-' = stdout), then exit")
		sketchN    = flag.Int("sketchn", 0, "skip -sketchbench workloads with more than this many vertices (0 = no cap; CI smoke uses a small cap)")
		shardOut   = flag.String("shardbench", "", "run partitioned-substrate benchmarks and write BENCH_shard.json to this path ('-' = stdout), then exit")
		shardN     = flag.Int("shardn", 0, "skip -shardbench workloads with more than this many vertices (0 = no cap; CI smoke uses a small cap)")
		streamN    = flag.Int("shardstream", 0, "with -shardbench: also emit streaming-construction rows for GNP edge streams up to this many vertices (0 = off; CI smoke uses a small cap)")
		speedupOut = flag.String("speedupbench", "", "measure per-stage speedup curves and write BENCH_speedup.json to this path ('-' = stdout), then exit")
		speedupN   = flag.Int("speedupn", 200_000, "skip -speedupbench workloads with more than this many vertices (0 = no cap; CI smoke uses a small cap)")
		speedupGr  = flag.String("speedupgrid", "", "comma-separated parallelism grid for -speedupbench (empty = 1,2,4,NumCPU)")
		fullGrid   = flag.Bool("require-full-grid", false, "refuse to emit any benchmark artifact whose parallelism grid collapses to a single effective level, instead of annotating it with degraded_grid")
		compareOld = flag.String("compare", "", "compare this baseline BENCH_*.json against the artifact given as the positional argument; print a per-row ns/op and allocs/op delta table, then exit")
	)
	flag.Parse()
	if *compareOld != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchtables: -compare old.json takes exactly one positional argument: the new artifact")
			os.Exit(2)
		}
		if err := runCompare(os.Stdout, *compareOld, flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		return
	}
	experiments.SetParallelism(*parallel)
	requireFullGrid = *fullGrid
	if *benchOut != "" || *graphOut != "" || *colorOut != "" || *distsimOut != "" || *acdOut != "" || *sketchOut != "" || *shardOut != "" || *speedupOut != "" {
		if *benchOut != "" {
			if err := emitEngineBench(*benchOut, *benchN, *seed); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
		}
		if *graphOut != "" {
			if err := emitGraphBench(*graphOut, *seed); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
		}
		if *colorOut != "" {
			if err := emitColorBench(*colorOut, *seed); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
		}
		if *distsimOut != "" {
			if err := emitDistsimBench(*distsimOut, *seed); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
		}
		if *acdOut != "" {
			if err := emitACDBench(*acdOut, *seed, *acdN); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
		}
		if *sketchOut != "" {
			if err := emitSketchBench(*sketchOut, *seed, *sketchN); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
		}
		if *shardOut != "" {
			if err := emitShardBench(*shardOut, *seed, *shardN, *streamN); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
		}
		if *speedupOut != "" {
			grid, err := parseParGrid(*speedupGr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
			if err := emitSpeedupBench(*speedupOut, *seed, *speedupN, grid); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
		}
		return
	}
	want := map[string]bool{}
	wantAblation := false
	if *ids != "" {
		for _, id := range strings.Split(*ids, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			want[id] = true
			if strings.HasPrefix(id, "A") {
				wantAblation = true
			}
		}
	}
	tables, err := experiments.All(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	if *ablations || wantAblation {
		abl, err := experiments.Ablations(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		tables = append(tables, abl...)
	}
	for _, t := range tables {
		if len(want) > 0 && !want[t.ID] {
			continue
		}
		if *format == "csv" {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
}
