// Command benchtables regenerates every experiment table of the evaluation
// (DESIGN.md §4, E1–E15) and prints them. Run with -id to select a subset.
//
//	benchtables            # the full battery
//	benchtables -id E7,E8  # selected experiments
//	benchtables -seed 9    # different randomness
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"clustercolor/internal/experiments"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "random seed")
		ids       = flag.String("id", "", "comma-separated experiment ids (empty = all)")
		ablations = flag.Bool("ablations", false, "also run the ablation battery (A1–A5)")
		format    = flag.String("format", "table", "output format: table | csv")
	)
	flag.Parse()
	tables, err := experiments.All(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	if *ablations || strings.HasPrefix(strings.ToUpper(*ids), "A") {
		abl, err := experiments.Ablations(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		tables = append(tables, abl...)
	}
	want := map[string]bool{}
	if *ids != "" {
		for _, id := range strings.Split(*ids, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	for _, t := range tables {
		if len(want) > 0 && !want[t.ID] {
			continue
		}
		if *format == "csv" {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
}
