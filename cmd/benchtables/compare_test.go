package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCompareArtifact(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCompareDeltaTable: two artifacts of the same schema pair row-by-row on
// identity fields and report the ns/op and allocs/op movement.
func TestCompareDeltaTable(t *testing.T) {
	old := writeCompareArtifact(t, "old.json", `{
		"schema": "clustercolor/bench-acd/v1", "gomaxprocs": 1,
		"benchmarks": [
			{"name": "ACD/GNP/n=1e6", "ns_per_op": 200000000000, "allocs_per_op": 3000, "sketch_bits": 5775},
			{"name": "ACD/Planted", "ns_per_op": 1000, "allocs_per_op": 10}
		],
		"curves": [{"workload": "ACD/GNP/n=1e6", "stage": "decompose",
			"points": [{"parallelism": 1, "ns_per_op": 5000}, {"parallelism": 2, "ns_per_op": 2600}]}]
	}`)
	new := writeCompareArtifact(t, "new.json", `{
		"schema": "clustercolor/bench-acd/v1", "gomaxprocs": 1,
		"benchmarks": [
			{"name": "ACD/GNP/n=1e6", "ns_per_op": 100000000000, "allocs_per_op": 2990, "sketch_bits": 5775},
			{"name": "ACD/Planted", "ns_per_op": 1500, "allocs_per_op": 10}
		],
		"curves": [{"workload": "ACD/GNP/n=1e6", "stage": "decompose",
			"points": [{"parallelism": 1, "ns_per_op": 5000}, {"parallelism": 2, "ns_per_op": 2600}]}]
	}`)
	var sb strings.Builder
	if err := runCompare(&sb, old, new); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"-50.0%",        // the GNP row halved
		"+50.0%",        // the planted row regressed
		"3000 → 2990",   // allocs movement is reported
		"4 paired rows", // 2 benchmarks + 2 curve points
		"0 old-only, 0 new-only",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}

// TestCompareRefusesMismatchedHeaders: timing deltas across a different
// schema or a different core count are meaningless and must be refused.
func TestCompareRefusesMismatchedHeaders(t *testing.T) {
	a := writeCompareArtifact(t, "a.json", `{"schema": "clustercolor/bench-acd/v1", "gomaxprocs": 1, "benchmarks": [{"name": "x", "ns_per_op": 10}]}`)
	for _, tc := range []struct{ name, body string }{
		{"schema", `{"schema": "clustercolor/bench-sketch/v1", "gomaxprocs": 1, "benchmarks": [{"name": "x", "ns_per_op": 10}]}`},
		{"gomaxprocs", `{"schema": "clustercolor/bench-acd/v1", "gomaxprocs": 8, "benchmarks": [{"name": "x", "ns_per_op": 10}]}`},
	} {
		b := writeCompareArtifact(t, tc.name+".json", tc.body)
		var sb strings.Builder
		if err := runCompare(&sb, a, b); err == nil || !strings.Contains(err.Error(), tc.name) {
			t.Errorf("mismatched %s: got err %v, want refusal naming %s", tc.name, err, tc.name)
		}
	}
}

// TestCompareIdentityIncludesOutputs: a row whose pinned output (sketch_bits)
// changed must not silently pair — it shows up as removed+added instead.
func TestCompareIdentityIncludesOutputs(t *testing.T) {
	old := writeCompareArtifact(t, "old.json", `{"schema": "s", "gomaxprocs": 1,
		"benchmarks": [{"name": "x", "ns_per_op": 10, "sketch_bits": 5775}, {"name": "y", "ns_per_op": 10}]}`)
	new := writeCompareArtifact(t, "new.json", `{"schema": "s", "gomaxprocs": 1,
		"benchmarks": [{"name": "x", "ns_per_op": 10, "sketch_bits": 9999}, {"name": "y", "ns_per_op": 10}]}`)
	var sb strings.Builder
	if err := runCompare(&sb, old, new); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1 paired rows, 1 old-only, 1 new-only") {
		t.Errorf("changed sketch_bits should unpair the row:\n%s", sb.String())
	}
}
