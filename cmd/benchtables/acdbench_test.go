package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"clustercolor/internal/benchwork"
	"clustercolor/internal/graph"
)

// TestEmitACDBench exercises the BENCH_acd.json emitter end-to-end on small
// workloads and validates the report schema: timings present, the instance
// shape and decomposition outcome recorded, rounds and sketch payloads
// positive, and the -acdn size cap honored.
func TestEmitACDBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emitter in short mode")
	}
	small := []benchwork.ACDWorkload{
		{
			Name: "ACD/Planted/test",
			N:    220,
			Eps:  0.25,
			Build: func() (*graph.Graph, error) {
				h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
					NumCliques:     3,
					CliqueSize:     40,
					DropFraction:   0.03,
					ExternalDegree: 2,
					SparseN:        100,
					SparseP:        0.05,
				}, graph.NewRand(3))
				return h, err
			},
		},
		{
			Name: "ACD/GNP/capped-out",
			N:    5000,
			Eps:  0.25,
			Build: func() (*graph.Graph, error) {
				t.Fatal("workload above the -acdn cap must not be built")
				return nil, nil
			},
		},
	}
	path := filepath.Join(t.TempDir(), "BENCH_acd.json")
	if err := emitACDBenchWorkloads(path, 7, 1000, small); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report acdBenchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Schema != "clustercolor/bench-acd/v1" {
		t.Fatalf("schema = %q", report.Schema)
	}
	if report.MaxN != 1000 {
		t.Fatalf("max_n = %d, want 1000", report.MaxN)
	}
	if len(report.Benchmarks) != 1 {
		t.Fatalf("got %d workload records, want 1 (cap should skip the second)", len(report.Benchmarks))
	}
	rec := report.Benchmarks[0]
	if rec.Iterations <= 0 || rec.NsPerOp <= 0 {
		t.Fatalf("workload record has empty measurements: %+v", rec)
	}
	if rec.Vertices != 220 || rec.Edges <= 0 || rec.Delta <= 0 {
		t.Fatalf("instance shape not recorded: %+v", rec)
	}
	if rec.Rounds <= 0 || rec.SketchBits <= 0 {
		t.Fatalf("decomposition cost missing: %+v", rec)
	}
	if rec.Cliques <= 0 || rec.Sparse <= 0 {
		t.Fatalf("planted instance should decompose into cliques + sparse: %+v", rec)
	}
	if rec.Cliques < rec.Cabals {
		t.Fatalf("cabal count %d exceeds clique count %d", rec.Cabals, rec.Cliques)
	}
}
