package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"clustercolor/internal/benchwork"
	"clustercolor/internal/core"
	"clustercolor/internal/experiments"
	"clustercolor/internal/graph"
)

// TestFinishCurve pins the speedup column and the monotonicity flag: speedup
// is measured against the first point with a nonzero cost, the serial point's
// own speedup is exactly 1, and NonMonotone trips whenever speedup decreases
// between consecutive points — strictly, so the CI smoke's monotone-or-flagged
// assertion holds by construction.
func TestFinishCurve(t *testing.T) {
	mk := func(ns ...float64) []curvePoint {
		pts := make([]curvePoint, len(ns))
		for i, v := range ns {
			pts[i] = curvePoint{Parallelism: 1 << i, EffectiveParallelism: 1 << i, NsPerOp: v}
		}
		return pts
	}
	c := finishCurve("w", "total", mk(100, 50, 25))
	if got := []float64{c.Points[0].SpeedupVsSerial, c.Points[1].SpeedupVsSerial, c.Points[2].SpeedupVsSerial}; got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("clean doubling curve got speedups %v, want [1 2 4]", got)
	}
	if c.NonMonotone {
		t.Fatal("strictly improving curve flagged non-monotone")
	}

	c = finishCurve("w", "total", mk(100, 50, 80))
	if !c.NonMonotone {
		t.Fatal("straggling last point (speedup 2 → 1.25) not flagged non-monotone")
	}

	// A zero-cost first point is skipped when picking the serial baseline.
	c = finishCurve("w", "total", mk(0, 50, 25))
	if c.Points[0].SpeedupVsSerial != 0 {
		t.Fatalf("unmeasured point carries speedup %v", c.Points[0].SpeedupVsSerial)
	}
	if c.Points[1].SpeedupVsSerial != 1 || c.Points[2].SpeedupVsSerial != 2 {
		t.Fatalf("baseline did not shift to the first measurable point: %+v", c.Points)
	}

	c = finishCurve("w", "total", mk(0, 0))
	for _, p := range c.Points {
		if p.SpeedupVsSerial != 0 {
			t.Fatalf("all-zero curve produced a speedup: %+v", c.Points)
		}
	}
	if c.NonMonotone {
		t.Fatal("all-zero curve flagged non-monotone")
	}
}

// TestCurveBuilderStageOrder checks curves() emits canonical stages in
// stageOrder and unknown stages alphabetically after them, with one point per
// grid level.
func TestCurveBuilderStageOrder(t *testing.T) {
	levels := []int{1, 2}
	cb := newCurveBuilder("w", levels)
	for _, stage := range []string{"zzz", "collect", "aaa", "total", "decompose"} {
		for li := range levels {
			cb.add(li, stage, float64(100*(li+1)))
		}
	}
	cs := cb.curves()
	var got []string
	for _, c := range cs {
		got = append(got, c.Stage)
		if len(c.Points) != len(levels) {
			t.Fatalf("stage %s has %d points, want one per grid level (%d)", c.Stage, len(c.Points), len(levels))
		}
	}
	want := []string{"total", "decompose", "collect", "aaa", "zzz"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("stage order %v, want %v", got, want)
	}
}

// TestParseParGrid covers the -speedupgrid flag syntax.
func TestParseParGrid(t *testing.T) {
	if g, err := parseParGrid(""); err != nil || g != nil {
		t.Fatalf("empty grid: %v %v", g, err)
	}
	g, err := parseParGrid(" 1, 2 ,4")
	if err != nil || fmt.Sprint(g) != "[1 2 4]" {
		t.Fatalf("got %v %v, want [1 2 4]", g, err)
	}
	for _, bad := range []string{"0", "x", "1,,2", "-1", "1,2.5"} {
		if _, err := parseParGrid(bad); err == nil {
			t.Errorf("grid %q accepted", bad)
		}
	}
}

// TestTimeStageRuns pins the measurement loop: always at least one run, the
// iteration cap binds when the wall budget doesn't, and stage costs come back
// averaged.
func TestTimeStageRuns(t *testing.T) {
	avg, iters, err := timeStageRuns(0, 8, func(iter int) (map[string]int64, error) {
		return map[string]int64{"a": 100}, nil
	})
	if err != nil || iters != 1 {
		t.Fatalf("zero wall budget ran %d iters (err %v), want exactly 1", iters, err)
	}
	if avg["a"] != 100 {
		t.Fatalf("avg = %v", avg)
	}
	avg, iters, err = timeStageRuns(time.Hour, 3, func(iter int) (map[string]int64, error) {
		return map[string]int64{"a": int64(100 * (iter + 1))}, nil
	})
	if err != nil || iters != 3 {
		t.Fatalf("capped loop ran %d iters (err %v), want 3", iters, err)
	}
	if avg["a"] != 200 { // (100+200+300)/3
		t.Fatalf("average over iterations = %v, want 200", avg["a"])
	}
	boom := fmt.Errorf("boom")
	if _, _, err := timeStageRuns(0, 8, func(int) (map[string]int64, error) { return nil, boom }); err != boom {
		t.Fatalf("step error not surfaced: %v", err)
	}
}

// speedupTestTimings shrinks the per-cell measurement budget for emitter tests
// and returns the restore func.
func speedupTestTimings(minWall time.Duration, maxIters int) func() {
	prevWall, prevIters := speedupMinWall, speedupMaxIters
	speedupMinWall, speedupMaxIters = minWall, maxIters
	return func() { speedupMinWall, speedupMaxIters = prevWall, prevIters }
}

// TestEmitSpeedupBench runs the BENCH_speedup.json emitter end-to-end on
// small workloads with GOMAXPROCS widened to 4, so the grid survives even on
// a 1-core regeneration box, and validates the schema: the full requested
// grid measured, one point per level per stage with
// effective_parallelism == parallelism on every surviving cell, serial points
// at speedup exactly 1, end-to-end headlines present, per-mode stage coverage
// (color total, ACD decompose, sketch collect, shard exchange), and the
// curve's serial total within an order of magnitude of a directly measured
// single-threaded run.
func TestEmitSpeedupBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emitter in short mode")
	}
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)
	defer speedupTestTimings(20*time.Millisecond, 4)()

	colorW := benchwork.ColorWorkload{
		Name: "Color/GNP/n=300/test",
		N:    300,
		Build: func() (*graph.Graph, error) {
			return graph.GNP(300, 0.05, graph.NewRand(5))
		},
		Params: core.DefaultParams,
	}
	acdW := benchwork.ACDWorkload{
		Name: "ACD/Planted/test",
		N:    220,
		Eps:  0.25,
		Build: func() (*graph.Graph, error) {
			h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
				NumCliques:     3,
				CliqueSize:     40,
				DropFraction:   0.03,
				ExternalDegree: 2,
				SparseN:        100,
				SparseP:        0.05,
			}, graph.NewRand(3))
			return h, err
		},
	}
	sketchW := benchwork.SketchWorkload{
		Name: "Sketch/GNP/n=400/test",
		N:    400,
		Xi:   0.25,
		Build: func() (*graph.Graph, error) {
			return graph.GNP(400, 24.0/400, graph.NewRand(5))
		},
	}

	const seed = 7
	requested := []int{1, 2, 4}
	path := filepath.Join(t.TempDir(), "BENCH_speedup.json")
	err := emitSpeedupBenchWorkloads(path, seed, 2_000, requested,
		[]benchwork.ColorWorkload{colorW}, []benchwork.ACDWorkload{acdW}, []benchwork.SketchWorkload{sketchW})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report speedupReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Schema != "clustercolor/bench-speedup/v1" {
		t.Fatalf("schema = %q", report.Schema)
	}
	if fmt.Sprint(report.RequestedLevels) != fmt.Sprint(requested) {
		t.Fatalf("requested_levels = %v, want %v", report.RequestedLevels, requested)
	}
	if fmt.Sprint(report.Levels) != fmt.Sprint(requested) {
		t.Fatalf("levels = %v, want the full requested grid %v at GOMAXPROCS=4", report.Levels, requested)
	}
	if report.DegradedGrid {
		t.Fatal("degraded_grid set on a full grid")
	}
	if len(report.Curves) == 0 {
		t.Fatal("no curves emitted")
	}

	stagesOf := map[string]map[string]speedupCurve{}
	for _, c := range report.Curves {
		if len(c.Points) != len(report.Levels) {
			t.Fatalf("%s/%s has %d points, want one per grid level (%d)", c.Workload, c.Stage, len(c.Points), len(report.Levels))
		}
		for i, p := range c.Points {
			if p.Parallelism != report.Levels[i] {
				t.Fatalf("%s/%s point %d at parallelism %d, want grid level %d", c.Workload, c.Stage, i, p.Parallelism, report.Levels[i])
			}
			if p.EffectiveParallelism != p.Parallelism {
				t.Fatalf("%s/%s: surviving cell at parallelism %d reports effective %d — surviving levels must be deliverable", c.Workload, c.Stage, p.Parallelism, p.EffectiveParallelism)
			}
		}
		if p := c.Points[0]; p.NsPerOp > 0 && p.SpeedupVsSerial != 1 {
			t.Fatalf("%s/%s serial point has speedup %v, want exactly 1", c.Workload, c.Stage, p.SpeedupVsSerial)
		}
		m, ok := stagesOf[c.Workload]
		if !ok {
			m = map[string]speedupCurve{}
			stagesOf[c.Workload] = m
		}
		m[c.Stage] = c
	}

	// Per-mode stage coverage.
	for _, want := range []struct{ wl, stage string }{
		{colorW.Name, "total"},
		{acdW.Name, "total"},
		{acdW.Name, "decompose"},
		{acdW.Name, "profile"},
		{sketchW.Name, "collect"},
		{acdW.Name + "/shards=2", "sharded-total"},
		{acdW.Name + "/shards=2", "exchange"},
	} {
		wl, stage := want.wl, want.stage
		c, ok := stagesOf[wl][stage]
		if !ok {
			t.Fatalf("workload %s missing stage curve %q (have %v)", wl, stage, stagesOf[wl])
		}
		for _, p := range c.Points {
			if p.NsPerOp <= 0 {
				t.Fatalf("%s/%s has an unmeasured point: %+v", wl, stage, c.Points)
			}
		}
	}
	// The coloring pipeline must also expose per-stage curves (which stages
	// ran depends on the low/high-degree path, so don't pin their names).
	if len(stagesOf[colorW.Name]) < 2 {
		t.Fatalf("color workload has only %v — per-stage curves missing", stagesOf[colorW.Name])
	}

	// Headlines cover every end-to-end curve.
	wantHeadlines := map[string]bool{colorW.Name: false, acdW.Name: false, acdW.Name + "/shards=2": false}
	for _, h := range report.Headline {
		if _, ok := wantHeadlines[h.Workload]; ok {
			wantHeadlines[h.Workload] = true
			if h.SerialNsPerOp <= 0 || h.BestSpeedup <= 0 || h.BestParallelism == 0 {
				t.Fatalf("headline for %s is empty: %+v", h.Workload, h)
			}
		}
	}
	for wl, seen := range wantHeadlines {
		if !seen {
			t.Fatalf("no headline row for %s", wl)
		}
	}

	// The curve's serial total must agree with a directly measured
	// single-threaded run within an order of magnitude — the serial point is
	// a real single-threaded measurement, not a derived number.
	serial := stagesOf[colorW.Name]["total"].Points[0].NsPerOp
	h, err := colorW.Build()
	if err != nil {
		t.Fatal(err)
	}
	params := colorW.Params(h.N())
	prevPar := experiments.SetParallelism(1)
	direct := math.Inf(1)
	for trial := 0; trial < 3; trial++ {
		t0 := time.Now()
		if _, err := benchwork.RunColor(h, params, seed); err != nil {
			experiments.SetParallelism(prevPar)
			t.Fatal(err)
		}
		if d := float64(time.Since(t0)); d < direct {
			direct = d
		}
	}
	experiments.SetParallelism(prevPar)
	if serial > 10*direct || direct > 10*serial {
		t.Fatalf("curve serial total %.0fns vs direct single-threaded run %.0fns: more than an order of magnitude apart", serial, direct)
	}
}

// TestEmitSpeedupBenchDegradedGrid pins the honesty contract on a box that
// cannot schedule the grid: with GOMAXPROCS=1 a requested [1,2] grid
// collapses, the artifact carries degraded_grid=true with only the surviving
// level, and under -require-full-grid the emitter refuses outright.
func TestEmitSpeedupBenchDegradedGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emitter in short mode")
	}
	prevProcs := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prevProcs)
	defer speedupTestTimings(time.Millisecond, 1)()

	colorWs := []benchwork.ColorWorkload{{
		Name: "Color/GNP/n=200/test",
		N:    200,
		Build: func() (*graph.Graph, error) {
			return graph.GNP(200, 0.05, graph.NewRand(5))
		},
		Params: core.DefaultParams,
	}}
	path := filepath.Join(t.TempDir(), "BENCH_speedup.json")
	if err := emitSpeedupBenchWorkloads(path, 7, 2_000, []int{1, 2}, colorWs, nil, nil); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report speedupReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !report.DegradedGrid {
		t.Fatal("collapsed grid not annotated degraded_grid=true")
	}
	if fmt.Sprint(report.Levels) != "[1]" {
		t.Fatalf("levels = %v, want the single surviving level [1]", report.Levels)
	}
	if fmt.Sprint(report.RequestedLevels) != "[1 2]" {
		t.Fatalf("requested_levels = %v, want the original request [1 2]", report.RequestedLevels)
	}
	for _, c := range report.Curves {
		if len(c.Points) != 1 || c.Points[0].Parallelism != 1 {
			t.Fatalf("%s/%s points = %+v, want the single surviving level", c.Workload, c.Stage, c.Points)
		}
	}

	// Under -require-full-grid the same request is a hard error, and no
	// artifact is written.
	requireFullGrid = true
	defer func() { requireFullGrid = false }()
	refused := filepath.Join(t.TempDir(), "refused.json")
	err = emitSpeedupBenchWorkloads(refused, 7, 2_000, []int{1, 2}, colorWs, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "require-full-grid") {
		t.Fatalf("degraded grid under -require-full-grid returned %v, want a refusal", err)
	}
	if _, statErr := os.Stat(refused); !os.IsNotExist(statErr) {
		t.Fatal("refused emitter still wrote an artifact")
	}
}
