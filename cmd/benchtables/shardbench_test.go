package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"clustercolor/internal/benchwork"
	"clustercolor/internal/graph"
)

// TestEmitShardBench exercises the BENCH_shard.json emitter end-to-end on a
// small workload and validates the report: the full shards × parallelism
// grid plus the unsharded reference cell, charged rounds identical across
// every cell (the emitter's own assertion, re-checked here from the JSON),
// zero exchange at one shard and nonzero exchange across real boundaries,
// and the -shardn size cap honored.
func TestEmitShardBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emitter in short mode")
	}
	small := []benchwork.ACDWorkload{
		{
			Name: "Shard/Planted/test",
			N:    220,
			Eps:  0.25,
			Build: func() (*graph.Graph, error) {
				h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
					NumCliques:     3,
					CliqueSize:     40,
					DropFraction:   0.03,
					ExternalDegree: 2,
					SparseN:        100,
					SparseP:        0.05,
				}, graph.NewRand(3))
				return h, err
			},
		},
		{
			Name: "Shard/GNP/capped-out",
			N:    5000,
			Eps:  0.25,
			Build: func() (*graph.Graph, error) {
				t.Fatal("workload above the -shardn cap must not be built")
				return nil, nil
			},
		},
	}
	path := filepath.Join(t.TempDir(), "BENCH_shard.json")
	if err := emitShardBenchWorkloads(path, 7, 1000, small); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report shardBenchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Schema != "clustercolor/bench-shard/v1" {
		t.Fatalf("schema = %q", report.Schema)
	}
	if report.MaxN != 1000 {
		t.Fatalf("max_n = %d, want 1000", report.MaxN)
	}
	wantCells := 1 + len(shardGrid())*len(shardParGrid())
	if len(report.Benchmarks) != wantCells {
		t.Fatalf("got %d cells, want %d (unsharded reference + full grid; cap should skip the second workload)",
			len(report.Benchmarks), wantCells)
	}
	ref := report.Benchmarks[0]
	if ref.Shards != 0 || ref.Rounds <= 0 || ref.NsPerOp <= 0 {
		t.Fatalf("unsharded reference cell malformed: %+v", ref)
	}
	sawBoundary := false
	for _, rec := range report.Benchmarks[1:] {
		if rec.Iterations <= 0 || rec.NsPerOp <= 0 || rec.Speedup <= 0 {
			t.Fatalf("cell %s has empty measurements: %+v", rec.Name, rec)
		}
		if rec.Vertices != 220 || rec.Edges <= 0 || rec.Delta <= 0 {
			t.Fatalf("cell %s: instance shape not recorded: %+v", rec.Name, rec)
		}
		if rec.Rounds != ref.Rounds {
			t.Fatalf("cell %s charged %d rounds, reference %d — the emitter should have rejected this grid",
				rec.Name, rec.Rounds, ref.Rounds)
		}
		if rec.Shards == 1 && (rec.ExchangedRows != 0 || rec.ExchangedBits != 0) {
			t.Fatalf("cell %s: single shard reported exchange traffic: %+v", rec.Name, rec)
		}
		if rec.Shards > 1 && rec.ExchangedRows > 0 {
			sawBoundary = true
			if rec.ExchangedBits <= 0 || rec.ExchangePhases <= 0 {
				t.Fatalf("cell %s: exchanged rows without bits/phases: %+v", rec.Name, rec)
			}
		}
	}
	if !sawBoundary {
		t.Fatal("no grid cell crossed a shard boundary — the planted instance spans every slice")
	}
}
