package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"clustercolor/internal/benchwork"
	"clustercolor/internal/graph"
)

// TestEmitShardBench exercises the BENCH_shard.json emitter end-to-end on a
// small workload and validates the report: the full shards × parallelism
// grid plus the unsharded reference cell, charged rounds identical across
// every cell (the emitter's own assertion, re-checked here from the JSON),
// zero exchange at one shard and nonzero exchange across real boundaries,
// and the -shardn size cap honored.
func TestEmitShardBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emitter in short mode")
	}
	small := []benchwork.ACDWorkload{
		{
			Name: "Shard/Planted/test",
			N:    220,
			Eps:  0.25,
			Build: func() (*graph.Graph, error) {
				h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
					NumCliques:     3,
					CliqueSize:     40,
					DropFraction:   0.03,
					ExternalDegree: 2,
					SparseN:        100,
					SparseP:        0.05,
				}, graph.NewRand(3))
				return h, err
			},
		},
		{
			Name: "Shard/GNP/capped-out",
			N:    5000,
			Eps:  0.25,
			Build: func() (*graph.Graph, error) {
				t.Fatal("workload above the -shardn cap must not be built")
				return nil, nil
			},
		},
	}
	path := filepath.Join(t.TempDir(), "BENCH_shard.json")
	if err := emitShardBenchWorkloads(path, 7, 1000, 0, small); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report shardBenchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Schema != "clustercolor/bench-shard/v1" {
		t.Fatalf("schema = %q", report.Schema)
	}
	if report.MaxN != 1000 {
		t.Fatalf("max_n = %d, want 1000", report.MaxN)
	}
	pars, _, err := shardParGrid()
	if err != nil {
		t.Fatal(err)
	}
	wantCells := 1 + len(shardGrid())*len(pars)
	if len(report.Benchmarks) != wantCells {
		t.Fatalf("got %d cells, want %d (unsharded reference + full grid; cap should skip the second workload)",
			len(report.Benchmarks), wantCells)
	}
	ref := report.Benchmarks[0]
	if ref.Shards != 0 || ref.Rounds <= 0 || ref.NsPerOp <= 0 {
		t.Fatalf("unsharded reference cell malformed: %+v", ref)
	}
	sawBoundary := false
	for _, rec := range report.Benchmarks[1:] {
		if rec.Iterations <= 0 || rec.NsPerOp <= 0 || rec.Speedup <= 0 {
			t.Fatalf("cell %s has empty measurements: %+v", rec.Name, rec)
		}
		if rec.Vertices != 220 || rec.Edges <= 0 || rec.Delta <= 0 {
			t.Fatalf("cell %s: instance shape not recorded: %+v", rec.Name, rec)
		}
		if rec.EffectiveParallelism != rec.Parallelism {
			t.Fatalf("cell %s: effective parallelism %d != requested %d — oversubscribed cells must be skipped, not emitted",
				rec.Name, rec.EffectiveParallelism, rec.Parallelism)
		}
		if rec.Rounds != ref.Rounds {
			t.Fatalf("cell %s charged %d rounds, reference %d — the emitter should have rejected this grid",
				rec.Name, rec.Rounds, ref.Rounds)
		}
		if rec.Shards == 1 && (rec.ExchangedRows != 0 || rec.ExchangedBits != 0) {
			t.Fatalf("cell %s: single shard reported exchange traffic: %+v", rec.Name, rec)
		}
		if rec.Shards > 1 && rec.ExchangedRows > 0 {
			sawBoundary = true
			if rec.ExchangedBits <= 0 || rec.ExchangePhases <= 0 {
				t.Fatalf("cell %s: exchanged rows without bits/phases: %+v", rec.Name, rec)
			}
		}
	}
	if !sawBoundary {
		t.Fatal("no grid cell crossed a shard boundary — the planted instance spans every slice")
	}
}

// TestEmitShardStreamRows exercises the -shardstream path end-to-end at a
// smoke size: one row built from a GNP edge stream with no global CSR,
// decomposed under a headless cluster view and digest-checked bit for bit
// against the materialized construction of the same instance, with the
// partition-cost and footprint gauges recorded.
func TestEmitShardStreamRows(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emitter in short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_shard.json")
	if err := emitShardBenchWorkloads(path, 7, 1000, 900, nil); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report shardBenchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.StreamMaxN != 900 {
		t.Fatalf("stream_max_n = %d, want 900", report.StreamMaxN)
	}
	if len(report.Benchmarks) != 0 {
		t.Fatalf("no workloads given, yet %d grid cells emitted", len(report.Benchmarks))
	}
	if len(report.Streaming) != 1 {
		t.Fatalf("got %d streaming rows, want 1 (cap below the ladder collapses to the cap)", len(report.Streaming))
	}
	row := report.Streaming[0]
	if row.Vertices != 900 || row.Shards != 2 || row.Edges <= 0 || row.Delta <= 0 {
		t.Fatalf("streaming row missing instance shape: %+v", row)
	}
	if row.Eps <= 0 || row.Eps >= 1 {
		t.Fatalf("streaming row must record its accuracy setting: %+v", row)
	}
	if row.PartitionNs <= 0 || row.PeakBufferedEdges <= 0 || row.PeakSliceBytes <= 0 || row.HaloVertices <= 0 {
		t.Fatalf("streaming row missing construction gauges: %+v", row)
	}
	if !row.DigestChecked {
		t.Fatalf("overlap row not digest-checked: %+v", row)
	}
	if row.DecompNs <= 0 || row.Rounds <= 0 || row.ExchangedRows <= 0 || row.ExchangedBits <= 0 {
		t.Fatalf("streaming row missing decomposition measurements: %+v", row)
	}
}
