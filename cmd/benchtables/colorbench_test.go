package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"clustercolor/internal/benchwork"
	"clustercolor/internal/core"
	"clustercolor/internal/graph"
)

// TestEmitColorBench exercises the BENCH_color.json emitter end-to-end on a
// small workload and validates the report schema: timings present, the
// instance shape and pipeline recorded, per-stage rounds non-empty, and the
// scratch-backed palette ops allocation-free.
func TestEmitColorBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emitter in short mode")
	}
	small := []benchwork.ColorWorkload{{
		Name: "Color/GNP/n=300/test",
		N:    300,
		Build: func() (*graph.Graph, error) {
			return graph.GNP(300, 0.05, graph.NewRand(5))
		},
		Params: core.DefaultParams,
	}}
	path := filepath.Join(t.TempDir(), "BENCH_color.json")
	if err := emitColorBenchWorkloads(path, 7, small, 2_000); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report colorBenchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Schema != "clustercolor/bench-color/v1" {
		t.Fatalf("schema = %q", report.Schema)
	}
	if len(report.Benchmarks) != 1 {
		t.Fatalf("got %d workload records, want 1", len(report.Benchmarks))
	}
	rec := report.Benchmarks[0]
	if rec.Iterations <= 0 || rec.NsPerOp <= 0 {
		t.Fatalf("workload record has empty measurements: %+v", rec)
	}
	if rec.Vertices != 300 || rec.Edges <= 0 || rec.Delta <= 0 {
		t.Fatalf("instance shape not recorded: %+v", rec)
	}
	if rec.Path != "low-degree" && rec.Path != "high-degree" {
		t.Fatalf("pipeline path %q not recorded", rec.Path)
	}
	if rec.Rounds <= 0 || len(rec.PhaseRounds) == 0 {
		t.Fatalf("per-stage rounds missing: rounds=%d phases=%d", rec.Rounds, len(rec.PhaseRounds))
	}
	var total int64
	for _, r := range rec.PhaseRounds {
		total += r
	}
	if total <= 0 {
		t.Fatal("phase rounds sum to zero")
	}
	if len(report.PaletteOps) == 0 {
		t.Fatal("palette micro-benchmarks missing")
	}
	for _, op := range report.PaletteOps {
		if op.Iterations <= 0 || op.NsPerOp <= 0 {
			t.Fatalf("palette op %s has empty measurements", op.Name)
		}
		if op.Name == "PaletteOps/PaletteScratch" && op.AllocsPerOp != 0 {
			t.Fatalf("scratch palette path allocates: %d allocs/op", op.AllocsPerOp)
		}
	}
}
