package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"clustercolor/internal/acd"
	"clustercolor/internal/benchwork"
	"clustercolor/internal/graph"
	"clustercolor/internal/parwork"
	"clustercolor/internal/shard"
	"clustercolor/internal/sketch"
)

// shardBenchReport is the BENCH_shard.json schema: for every decomposition
// workload, one unsharded reference cell plus a grid of shard count ×
// parallelism cells, each with the run time, the charged rounds (asserted
// equal across the whole grid — sharding is an execution layout, not a cost
// change), and the cross-shard exchange traffic that IS new in a partitioned
// run.
type shardBenchReport struct {
	Schema     string             `json:"schema"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Seed       uint64             `json:"seed"`
	MaxN       int                `json:"max_n,omitempty"`
	Note       string             `json:"note"`
	Benchmarks []shardBenchResult `json:"benchmarks"`
}

const shardBenchNote = "charged rounds are shard-invariant (every cell of a workload equals its unsharded reference; the emitter errors otherwise); exchanged rows/bits are boundary-exchange traffic of the execution layout, charged separately from cluster rounds"

// shardBenchResult is one grid cell. Shards 0 marks the unsharded reference
// the speedups are measured against.
type shardBenchResult struct {
	benchResult
	Vertices int   `json:"vertices"`
	Delta    int   `json:"delta"`
	Shards   int   `json:"shards"`
	Rounds   int64 `json:"rounds"`
	// HaloVertices is the total replicated-boundary footprint of the
	// partition (sum of halo sizes over shards); PartitionNs is the one-time
	// slice-construction cost, reported on the first cell of each shard
	// count.
	HaloVertices int   `json:"halo_vertices,omitempty"`
	PartitionNs  int64 `json:"partition_ns,omitempty"`
	// ExchangedRows/Bits total the boundary-exchange phases of one run;
	// MaxPhaseBits is the heaviest single phase.
	ExchangedRows  int64 `json:"exchanged_rows"`
	ExchangedBits  int64 `json:"exchanged_bits"`
	MaxPhaseBits   int64 `json:"max_phase_bits,omitempty"`
	ExchangePhases int   `json:"exchange_phases,omitempty"`
	// Speedup is unsharded-reference ns/op over this cell's ns/op.
	Speedup float64 `json:"speedup_vs_unsharded,omitempty"`
}

// shardGrid returns the shard counts every workload runs at.
func shardGrid() []int { return []int{1, 2, 4, 8} }

// shardParGrid returns the parallelism levels of the grid: 1, 2, 4, and
// NumCPU, deduplicated and sorted.
func shardParGrid() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	pars := make([]int, 0, len(set))
	for p := range set {
		pars = append(pars, p)
	}
	sort.Ints(pars)
	return pars
}

// emitShardBench benchmarks the partitioned decomposition substrate on every
// workload with N ≤ maxN (maxN ≤ 0 = no cap) and writes BENCH_shard.json to
// path ("-" for stdout).
func emitShardBench(path string, seed uint64, maxN int) error {
	return emitShardBenchWorkloads(path, seed, maxN, benchwork.ACDWorkloads())
}

// emitShardBenchWorkloads is emitShardBench over an explicit workload list,
// so tests can exercise the emitter on small instances.
func emitShardBenchWorkloads(path string, seed uint64, maxN int, workloads []benchwork.ACDWorkload) error {
	report := shardBenchReport{
		Schema:     "clustercolor/bench-shard/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Note:       shardBenchNote,
	}
	if maxN > 0 {
		report.MaxN = maxN
	}
	for _, w := range workloads {
		if maxN > 0 && w.N > maxN {
			continue
		}
		h, err := w.Build()
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		cg, err := benchwork.NewACDInstance(h, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		ws := acd.NewWorkspace()
		// Unsharded reference at parallelism 1: the baseline every grid
		// cell's speedup and charged rounds are measured against. The seed is
		// fixed across all iterations and cells so the byte-identity contract
		// makes the round assertion exact.
		var refRounds int64
		var loopErr error
		prev := parwork.SetParallelism(1)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				before := cg.Cost().Rounds()
				if _, _, err := benchwork.RunACDOnce(cg, w.Eps, seed, ws); err != nil {
					loopErr = fmt.Errorf("%s: %w", w.Name, err)
					b.Fatal(err)
				}
				refRounds = cg.Cost().Rounds() - before
			}
		})
		parwork.SetParallelism(prev)
		if loopErr != nil {
			return loopErr
		}
		ref := shardBenchResult{
			benchResult: record(w.Name+"/unsharded", r),
			Vertices:    h.N(),
			Delta:       h.MaxDegree(),
			Rounds:      refRounds,
		}
		ref.Parallelism = 1
		ref.Edges = h.M()
		report.Benchmarks = append(report.Benchmarks, ref)
		for _, k := range shardGrid() {
			t0 := time.Now()
			sg, err := graph.NewShardedGraph(h, k)
			if err != nil {
				return fmt.Errorf("%s: shards=%d: %w", w.Name, k, err)
			}
			partitionNs := time.Since(t0).Nanoseconds()
			halo := 0
			for _, sl := range sg.Slices {
				halo += len(sl.Halo)
			}
			for _, par := range shardParGrid() {
				var rounds int64
				var stats shard.ExchangeStats
				prev := parwork.SetParallelism(par)
				// The engine splits its per-shard pool shares from the
				// parallelism knob at construction, so it is built inside the
				// SetParallelism scope.
				se := shard.NewEngine(sg, sketch.MaxKernel{})
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						se.ResetStats()
						before := cg.Cost().Rounds()
						if _, _, err := benchwork.RunACDShardedOnce(cg, se, w.Eps, seed, ws); err != nil {
							loopErr = fmt.Errorf("%s: shards=%d par=%d: %w", w.Name, k, par, err)
							b.Fatal(err)
						}
						rounds = cg.Cost().Rounds() - before
						stats = se.Stats
					}
				})
				parwork.SetParallelism(prev)
				if loopErr != nil {
					return loopErr
				}
				if rounds != refRounds {
					return fmt.Errorf("%s: shards=%d par=%d charged %d rounds, unsharded reference charged %d — sharding must not change the round budget",
						w.Name, k, par, rounds, refRounds)
				}
				if k == 1 && stats.Rows != 0 {
					return fmt.Errorf("%s: single shard exchanged %d rows", w.Name, stats.Rows)
				}
				rec := shardBenchResult{
					benchResult:    record(fmt.Sprintf("%s/shards=%d/par=%d", w.Name, k, par), r),
					Vertices:       h.N(),
					Delta:          h.MaxDegree(),
					Shards:         k,
					Rounds:         rounds,
					HaloVertices:   halo,
					ExchangedRows:  stats.Rows,
					ExchangedBits:  stats.Bits,
					MaxPhaseBits:   stats.MaxPhaseBits,
					ExchangePhases: len(stats.Phases),
				}
				rec.Parallelism = par
				rec.Edges = h.M()
				if par == shardParGrid()[0] {
					rec.PartitionNs = partitionNs
				}
				if rec.NsPerOp > 0 {
					rec.Speedup = ref.NsPerOp / rec.NsPerOp
				}
				report.Benchmarks = append(report.Benchmarks, rec)
			}
		}
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
