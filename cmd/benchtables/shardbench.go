package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"testing"
	"time"

	"clustercolor/internal/acd"
	"clustercolor/internal/benchwork"
	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/parwork"
	"clustercolor/internal/shard"
	"clustercolor/internal/sketch"
)

// shardBenchReport is the BENCH_shard.json schema: for every decomposition
// workload, one unsharded reference cell plus a grid of shard count ×
// parallelism cells, each with the run time, the charged rounds (asserted
// equal across the whole grid — sharding is an execution layout, not a cost
// change), and the cross-shard exchange traffic that IS new in a partitioned
// run.
type shardBenchReport struct {
	Schema     string `json:"schema"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Seed       uint64 `json:"seed"`
	MaxN       int    `json:"max_n,omitempty"`
	StreamMaxN int    `json:"stream_max_n,omitempty"`
	// GridLevels is the honest parallelism grid of the shard × parallelism
	// sweep; DegradedGrid marks a report whose requested grid (1, 2, 4,
	// NumCPU) collapsed to a single effective level on the emitting box.
	GridLevels   []int              `json:"grid_levels"`
	DegradedGrid bool               `json:"degraded_grid,omitempty"`
	Note         string             `json:"note"`
	Benchmarks   []shardBenchResult `json:"benchmarks"`
	// Streaming holds the streaming-construction rows: GNP instances
	// produced as edge streams and partitioned into slices without ever
	// materializing a global CSR, at sizes past what the grid above (and the
	// global builder's 2³⁰−1 edge cap) can reach.
	Streaming []shardStreamResult `json:"streaming,omitempty"`
}

const shardBenchNote = "charged rounds are shard-invariant (every cell of a workload equals its unsharded reference; the emitter errors otherwise); exchanged rows/bits are boundary-exchange traffic of the execution layout, charged separately from cluster rounds"

// shardBenchResult is one grid cell. Shards 0 marks the unsharded reference
// the speedups are measured against.
type shardBenchResult struct {
	benchResult
	Vertices int   `json:"vertices"`
	Delta    int   `json:"delta"`
	Shards   int   `json:"shards"`
	Rounds   int64 `json:"rounds"`
	// HaloVertices is the total replicated-boundary footprint of the
	// partition (sum of halo sizes over shards); PartitionNs is the one-time
	// slice-construction cost, reported on the first cell of each shard
	// count.
	HaloVertices int   `json:"halo_vertices,omitempty"`
	PartitionNs  int64 `json:"partition_ns,omitempty"`
	// ExchangedRows/Bits total the boundary-exchange phases of one run;
	// MaxPhaseBits is the heaviest single phase; ExchangeNs is the wall-clock
	// share those phases cost the run.
	ExchangedRows  int64 `json:"exchanged_rows"`
	ExchangedBits  int64 `json:"exchanged_bits"`
	MaxPhaseBits   int64 `json:"max_phase_bits,omitempty"`
	ExchangePhases int   `json:"exchange_phases,omitempty"`
	ExchangeNs     int64 `json:"exchange_ns,omitempty"`
	// Speedup is unsharded-reference ns/op over this cell's ns/op;
	// SpeedupVsSerial compares the cell with the parallelism-1 cell of the
	// same workload and shard count (the per-shard-count scaling curve).
	Speedup         float64 `json:"speedup_vs_unsharded,omitempty"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// shardStreamResult is one streaming-construction row: a GNP instance
// produced as an edge stream — never materialized globally — and partitioned
// into per-shard slices by the streaming builder.
type shardStreamResult struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Delta    int    `json:"delta"`
	Shards   int    `json:"shards"`
	// Eps is the decomposition accuracy the row's runs use. Streaming rows run
	// at a coarser eps than the grid: sketch trials grow as Θ(ξ⁻² log n) and
	// sharded arenas hold owned+halo rows, so the n=10⁷ ladder rung only fits
	// in memory at the top of the decomposition's (0, 1/3) eps domain.
	Eps float64 `json:"eps"`
	// Parallelism is the worker budget of the row's runs (already effective:
	// streaming rows run at GOMAXPROCS).
	Parallelism int `json:"parallelism"`
	// PartitionNs is the wall time to drain the edge stream and build every
	// slice; PeakBufferedEdges is the builder's high-water mark of buffered
	// packed edges (8 bytes each) — the transient cost the streaming path
	// pays instead of a global CSR.
	PartitionNs       int64 `json:"partition_ns"`
	PeakBufferedEdges int   `json:"peak_buffered_edges"`
	// PeakSliceBytes is the largest single-slice footprint (local CSR plus
	// halo and boundary tables) — the per-process resident size a
	// multi-process deployment would need; HaloVertices totals the
	// replicated boundary over all slices.
	PeakSliceBytes int64 `json:"peak_slice_bytes"`
	HaloVertices   int   `json:"halo_vertices"`
	// DecompNs/Rounds/Exchanged* report one sharded decomposition over the
	// streamed slices under a headless cluster view (set on rows that ran
	// one — at minimum the largest).
	DecompNs      int64 `json:"decomp_ns,omitempty"`
	Rounds        int64 `json:"rounds,omitempty"`
	ExchangedRows int64 `json:"exchanged_rows,omitempty"`
	ExchangedBits int64 `json:"exchanged_bits,omitempty"`
	// DigestChecked marks the overlap row whose decomposition was re-run on
	// a materialized construction of the same instance under the
	// materialized singleton fixture and compared bit for bit (FNV digest of
	// the clique assignment, plus charged rounds).
	DigestChecked bool `json:"digest_checked,omitempty"`
}

// shardGrid returns the shard counts every workload runs at.
func shardGrid() []int { return []int{1, 2, 4, 8} }

// shardParGrid returns the parallelism levels of the grid — 1, 2, 4, and
// NumCPU, deduplicated and sorted, with oversubscribed levels skipped so
// every cell measures a worker count the scheduler can deliver — plus the
// degraded-grid verdict (or a refusal under -require-full-grid).
func shardParGrid() ([]int, bool, error) {
	return parGrid("shardbench", defaultCurveGrid()...)
}

// emitShardBench benchmarks the partitioned decomposition substrate on every
// workload with N ≤ maxN (maxN ≤ 0 = no cap) and writes BENCH_shard.json to
// path ("-" for stdout). streamN > 0 additionally emits the
// streaming-construction rows for GNP edge streams up to that many vertices.
func emitShardBench(path string, seed uint64, maxN, streamN int) error {
	return emitShardBenchWorkloads(path, seed, maxN, streamN, benchwork.ACDWorkloads())
}

// emitShardBenchWorkloads is emitShardBench over an explicit workload list,
// so tests can exercise the emitter on small instances.
func emitShardBenchWorkloads(path string, seed uint64, maxN, streamN int, workloads []benchwork.ACDWorkload) error {
	report := shardBenchReport{
		Schema:     "clustercolor/bench-shard/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Note:       shardBenchNote,
	}
	if maxN > 0 {
		report.MaxN = maxN
	}
	pars, degraded, err := shardParGrid()
	if err != nil {
		return err
	}
	report.GridLevels = pars
	report.DegradedGrid = degraded
	for _, w := range workloads {
		if maxN > 0 && w.N > maxN {
			continue
		}
		h, err := w.Build()
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		cg, err := benchwork.NewACDInstance(h, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		ws := acd.NewWorkspace()
		// Unsharded reference at parallelism 1: the baseline every grid
		// cell's speedup and charged rounds are measured against. The seed is
		// fixed across all iterations and cells so the byte-identity contract
		// makes the round assertion exact.
		var refRounds int64
		var loopErr error
		prev := parwork.SetParallelism(1)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				before := cg.Cost().Rounds()
				if _, _, err := benchwork.RunACDOnce(cg, w.Eps, seed, ws); err != nil {
					loopErr = fmt.Errorf("%s: %w", w.Name, err)
					b.Fatal(err)
				}
				refRounds = cg.Cost().Rounds() - before
			}
		})
		parwork.SetParallelism(prev)
		if loopErr != nil {
			return loopErr
		}
		ref := shardBenchResult{
			benchResult: record(w.Name+"/unsharded", r),
			Vertices:    h.N(),
			Delta:       h.MaxDegree(),
			Rounds:      refRounds,
		}
		ref.Parallelism = 1
		ref.EffectiveParallelism = effectivePar(1)
		ref.Edges = h.M()
		report.Benchmarks = append(report.Benchmarks, ref)
		for _, k := range shardGrid() {
			t0 := time.Now()
			sg, err := graph.NewShardedGraph(h, k)
			if err != nil {
				return fmt.Errorf("%s: shards=%d: %w", w.Name, k, err)
			}
			partitionNs := time.Since(t0).Nanoseconds()
			halo := 0
			for _, sl := range sg.Slices {
				halo += len(sl.Halo)
			}
			var serialNs float64
			for _, par := range pars {
				var rounds int64
				var stats shard.ExchangeStats
				prev := parwork.SetParallelism(par)
				// The engine splits its per-shard pool shares from the
				// parallelism knob at construction, so it is built inside the
				// SetParallelism scope.
				se := shard.NewEngine(sg, sketch.MaxKernel{})
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						se.ResetStats()
						before := cg.Cost().Rounds()
						if _, _, err := benchwork.RunACDShardedOnce(cg, se, w.Eps, seed, ws); err != nil {
							loopErr = fmt.Errorf("%s: shards=%d par=%d: %w", w.Name, k, par, err)
							b.Fatal(err)
						}
						rounds = cg.Cost().Rounds() - before
						stats = se.Stats
					}
				})
				parwork.SetParallelism(prev)
				if loopErr != nil {
					return loopErr
				}
				if rounds != refRounds {
					return fmt.Errorf("%s: shards=%d par=%d charged %d rounds, unsharded reference charged %d — sharding must not change the round budget",
						w.Name, k, par, rounds, refRounds)
				}
				if k == 1 && stats.Rows != 0 {
					return fmt.Errorf("%s: single shard exchanged %d rows", w.Name, stats.Rows)
				}
				rec := shardBenchResult{
					benchResult:    record(fmt.Sprintf("%s/shards=%d/par=%d", w.Name, k, par), r),
					Vertices:       h.N(),
					Delta:          h.MaxDegree(),
					Shards:         k,
					Rounds:         rounds,
					HaloVertices:   halo,
					ExchangedRows:  stats.Rows,
					ExchangedBits:  stats.Bits,
					MaxPhaseBits:   stats.MaxPhaseBits,
					ExchangePhases: len(stats.Phases),
					ExchangeNs:     stats.ExchangeNs,
				}
				rec.Parallelism = par
				rec.EffectiveParallelism = effectivePar(par)
				rec.Edges = h.M()
				if par == pars[0] {
					rec.PartitionNs = partitionNs
					serialNs = rec.NsPerOp
				}
				if rec.NsPerOp > 0 {
					rec.Speedup = ref.NsPerOp / rec.NsPerOp
					if serialNs > 0 {
						rec.SpeedupVsSerial = serialNs / rec.NsPerOp
					}
				}
				report.Benchmarks = append(report.Benchmarks, rec)
			}
		}
	}
	if streamN > 0 {
		report.StreamMaxN = streamN
		if err := emitShardStreamRows(&report, seed, streamN); err != nil {
			return err
		}
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// streamSizes returns the GNP ladder the streaming rows run at, capped at
// maxN. A cap below the ladder (the CI smoke) collapses to the cap itself so
// the whole path still executes.
func streamSizes(maxN int) []int {
	var out []int
	for _, n := range []int{100_000, 1_000_000, 10_000_000} {
		if n <= maxN {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{maxN}
	}
	return out
}

// cliqueDigest is an FNV-1a digest of the clique assignment — enough to
// compare two decompositions of the same instance bit for bit without
// holding both in memory.
func cliqueDigest(d *acd.Decomposition) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, c := range d.CliqueOf {
		binary.LittleEndian.PutUint32(buf[:], uint32(c))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// sliceBytes is the resident footprint of one slice: local CSR offsets and
// adjacency plus the halo, halo-owner, and boundary tables (4 bytes per
// entry; the adjacency holds 2m int32 neighbor slots).
func sliceBytes(sl *graph.ShardSlice) int64 {
	return int64(4*(sl.CSR.N()+1)) + int64(8*sl.CSR.M()) +
		int64(4*(len(sl.Halo)+len(sl.HaloOwner)+len(sl.Boundary)))
}

// emitShardStreamRows appends the streaming-construction rows: for each
// ladder size, a GNP edge stream is partitioned into slices with no global
// CSR, recording partition cost and peak slice footprint. The smallest row's
// decomposition is cross-checked bit for bit against the materialized
// construction of the same instance (streamed slices + headless view versus
// materialized slices + singleton fixture, which charge identically), and
// the largest row runs one streamed decomposition end to end.
func emitShardStreamRows(report *shardBenchReport, seed uint64, maxN int) error {
	// The ladder's top rung (n=10⁷) sizes everything here. Sketch trials are
	// Θ(ξ⁻² log n) with ξ = eps/4 inside the decomposition, and the per-slice
	// arenas hold owned AND halo rows, so the two arenas cost
	// (n + Σ halo)·t·4 bytes: the grid's eps 0.25 / deg 64 shape would need
	// hundreds of GB at n=10⁷. eps 0.3 (the top of the decomposition's
	// (0, 1/3) domain), degree 4, and two shards keep halos near 0.86n and
	// t at 1163 — ~87 GB of arenas, which fits a 125 GB box.
	const shards = 2
	const eps = 0.3
	const deg = 4.0
	sizes := streamSizes(maxN)
	par := runtime.GOMAXPROCS(0)
	prev := parwork.SetParallelism(par)
	defer parwork.SetParallelism(prev)
	ws := acd.NewWorkspace()
	runOnce := func(cg *cluster.CG, sg *graph.ShardedGraph, rngSeed uint64) (uint64, int64, shard.ExchangeStats, int64, error) {
		se := shard.NewEngine(sg, sketch.MaxKernel{})
		t0 := time.Now()
		d, err := benchwork.RunACDStreamedOnce(cg, se, eps, rngSeed, ws)
		if err != nil {
			return 0, 0, shard.ExchangeStats{}, 0, err
		}
		return cliqueDigest(d), cg.Cost().Rounds(), se.Stats, time.Since(t0).Nanoseconds(), nil
	}
	for i, n := range sizes {
		fmt.Fprintf(os.Stderr, "benchtables: shardbench: streaming row n=%d (of %v)\n", n, sizes)
		p := deg / float64(n)
		gnpSeed := seed ^ uint64(n)
		stream, err := graph.GNPStream(n, p, gnpSeed)
		if err != nil {
			return fmt.Errorf("shardstream: n=%d: %w", n, err)
		}
		starts, err := graph.EvenStarts(n, shards)
		if err != nil {
			return fmt.Errorf("shardstream: n=%d: %w", n, err)
		}
		sb, err := graph.NewShardedBuilder(n, starts)
		if err != nil {
			return fmt.Errorf("shardstream: n=%d: %w", n, err)
		}
		t0 := time.Now()
		if err := stream(sb.AddEdge); err != nil {
			return fmt.Errorf("shardstream: n=%d: %w", n, err)
		}
		peakEdges := sb.PeakBufferedEdges()
		sg, err := sb.Build()
		if err != nil {
			return fmt.Errorf("shardstream: n=%d: %w", n, err)
		}
		partitionNs := time.Since(t0).Nanoseconds()
		rec := shardStreamResult{
			Name:              fmt.Sprintf("StreamGNP/n=%d/deg=%.0f/shards=%d", n, deg, shards),
			Vertices:          n,
			Edges:             sg.M(),
			Delta:             sg.MaxDegree(),
			Shards:            shards,
			Eps:               eps,
			Parallelism:       par,
			PartitionNs:       partitionNs,
			PeakBufferedEdges: peakEdges,
		}
		halo := 0
		for _, sl := range sg.Slices {
			halo += len(sl.Halo)
			if b := sliceBytes(sl); b > rec.PeakSliceBytes {
				rec.PeakSliceBytes = b
			}
		}
		rec.HaloVertices = halo
		if i == 0 {
			// Overlap row: the streamed decomposition must match a
			// materialized run of the same instance bit for bit, rounds
			// included.
			cg, err := benchwork.NewStreamedACDInstance(n)
			if err != nil {
				return err
			}
			digest, rounds, stats, ns, err := runOnce(cg, sg, seed)
			if err != nil {
				return fmt.Errorf("shardstream: n=%d: streamed decomp: %w", n, err)
			}
			h, err := graph.GNP(n, p, graph.NewRand(gnpSeed))
			if err != nil {
				return err
			}
			msg, err := graph.NewShardedGraph(h, shards)
			if err != nil {
				return err
			}
			mcg, err := benchwork.NewACDInstance(h, seed)
			if err != nil {
				return err
			}
			mDigest, mRounds, _, _, err := runOnce(mcg, msg, seed)
			if err != nil {
				return fmt.Errorf("shardstream: n=%d: materialized decomp: %w", n, err)
			}
			if digest != mDigest || rounds != mRounds {
				return fmt.Errorf("shardstream: n=%d: streamed decomposition diverges from materialized (digest %x/%x, rounds %d/%d)",
					n, digest, mDigest, rounds, mRounds)
			}
			rec.DecompNs, rec.Rounds = ns, rounds
			rec.ExchangedRows, rec.ExchangedBits = stats.Rows, stats.Bits
			rec.DigestChecked = true
		} else if i == len(sizes)-1 {
			// Largest row: the acceptance run — a sharded decomposition on a
			// streamed instance with no global CSR anywhere.
			cg, err := benchwork.NewStreamedACDInstance(n)
			if err != nil {
				return err
			}
			_, rounds, stats, ns, err := runOnce(cg, sg, seed)
			if err != nil {
				return fmt.Errorf("shardstream: n=%d: streamed decomp: %w", n, err)
			}
			rec.DecompNs, rec.Rounds = ns, rounds
			rec.ExchangedRows, rec.ExchangedBits = stats.Rows, stats.Bits
		}
		report.Streaming = append(report.Streaming, rec)
	}
	return nil
}
