package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"clustercolor/internal/benchwork"
	"clustercolor/internal/graph"
)

// graphBenchReport is the BENCH_graph.json schema: one record per generator
// workload, with the instance shape next to the timings so O(n+m) scaling
// can be read off the file (compare ns_per_op across the n=1e5/1e6 rows).
type graphBenchReport struct {
	Schema     string             `json:"schema"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Seed       uint64             `json:"seed"`
	Benchmarks []graphBenchResult `json:"benchmarks"`
}

// graphBenchResult names the instance size "vertices": unlike the engine
// report there are no simulated machines here, just the generated graph.
type graphBenchResult struct {
	benchResult
	Vertices int `json:"vertices"`
}

// emitGraphBench benchmarks every generator workload and writes the
// machine-readable report to path ("-" for stdout).
func emitGraphBench(path string, seed uint64) error {
	report := graphBenchReport{
		Schema:     "clustercolor/bench-graph/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       seed,
	}
	for _, w := range benchwork.GraphGenWorkloads() {
		// The instance shape (N, M) is captured from the first timed
		// iteration rather than a separate untimed generation, which would
		// double bench-graph's wall clock on the million-vertex rows.
		var g *graph.Graph
		var loopErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := w.Gen(seed + uint64(i))
				if err != nil {
					// b.Fatal alone would make testing.Benchmark return a
					// zero result and the report silently record ns_per_op=0.
					loopErr = fmt.Errorf("%s: %w", w.Name, err)
					b.Fatal(err)
				}
				if g == nil {
					g = got
				}
			}
		})
		if loopErr != nil {
			return loopErr
		}
		if g == nil {
			return fmt.Errorf("%s: benchmark ran zero iterations", w.Name)
		}
		rec := graphBenchResult{benchResult: record(w.Name, r), Vertices: g.N()}
		rec.Edges = g.M()
		report.Benchmarks = append(report.Benchmarks, rec)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
