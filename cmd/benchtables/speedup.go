package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"clustercolor/internal/acd"
	"clustercolor/internal/benchwork"
	"clustercolor/internal/cluster"
	"clustercolor/internal/experiments"
	"clustercolor/internal/graph"
	"clustercolor/internal/shard"
	"clustercolor/internal/sketch"
)

// curvePoint is one cell of a speedup curve: the requested parallelism level,
// what the scheduler could actually deliver, the measured per-run wall cost,
// and the speedup against the curve's serial (first-level) point.
type curvePoint struct {
	Parallelism          int     `json:"parallelism"`
	EffectiveParallelism int     `json:"effective_parallelism"`
	NsPerOp              float64 `json:"ns_per_op"`
	SpeedupVsSerial      float64 `json:"speedup_vs_serial,omitempty"`
}

// speedupCurve is the scaling curve of one pipeline stage on one workload:
// per-level wall cost over the parallelism grid. NonMonotone marks curves
// whose speedup ever decreases as levels grow — flagged rather than hidden,
// so a straggling stage is visible in the artifact instead of averaged away.
type speedupCurve struct {
	Workload    string       `json:"workload"`
	Stage       string       `json:"stage"`
	Points      []curvePoint `json:"points"`
	NonMonotone bool         `json:"non_monotone,omitempty"`
}

// finishCurve computes the speedup column (against the first point with a
// nonzero cost) and the monotonicity flag.
func finishCurve(workload, stage string, pts []curvePoint) speedupCurve {
	var serial float64
	for _, p := range pts {
		if p.NsPerOp > 0 {
			serial = p.NsPerOp
			break
		}
	}
	for i := range pts {
		if serial > 0 && pts[i].NsPerOp > 0 {
			pts[i].SpeedupVsSerial = serial / pts[i].NsPerOp
		}
	}
	c := speedupCurve{Workload: workload, Stage: stage, Points: pts}
	for i := 1; i < len(pts); i++ {
		if pts[i].SpeedupVsSerial > 0 && pts[i-1].SpeedupVsSerial > 0 &&
			pts[i].SpeedupVsSerial < pts[i-1].SpeedupVsSerial {
			c.NonMonotone = true
		}
	}
	return c
}

// curveFromNs builds a finished curve from parallel slices of grid levels and
// measured costs (the shape the wave-sweep emitters already have in hand).
func curveFromNs(workload, stage string, levels []int, ns []float64) speedupCurve {
	pts := make([]curvePoint, len(levels))
	for i, par := range levels {
		pts[i] = curvePoint{Parallelism: par, EffectiveParallelism: effectivePar(par), NsPerOp: ns[i]}
	}
	return finishCurve(workload, stage, pts)
}

// stageOrder is the canonical presentation order of stage curves; stages not
// listed sort alphabetically after it.
var stageOrder = []string{
	"total", "sharded-total", "decompose", "profile",
	"slackgen", "sparse", "matchings", "scts", "palettes", "donate",
	"lowdegree", "fallback", "collect", "exchange",
}

// curveBuilder accumulates per-stage costs over the grid for one workload and
// turns them into finished curves in canonical stage order.
type curveBuilder struct {
	workload string
	levels   []int
	ns       map[string][]float64
}

func newCurveBuilder(workload string, levels []int) *curveBuilder {
	return &curveBuilder{workload: workload, levels: levels, ns: map[string][]float64{}}
}

func (cb *curveBuilder) add(levelIdx int, stage string, nsPerOp float64) {
	s, ok := cb.ns[stage]
	if !ok {
		s = make([]float64, len(cb.levels))
		cb.ns[stage] = s
	}
	s[levelIdx] = nsPerOp
}

func (cb *curveBuilder) curves() []speedupCurve {
	rank := map[string]int{}
	for i, s := range stageOrder {
		rank[s] = i
	}
	stages := make([]string, 0, len(cb.ns))
	for s := range cb.ns {
		stages = append(stages, s)
	}
	sort.Slice(stages, func(i, j int) bool {
		ri, iok := rank[stages[i]]
		rj, jok := rank[stages[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok != jok:
			return iok
		default:
			return stages[i] < stages[j]
		}
	})
	out := make([]speedupCurve, 0, len(stages))
	for _, stage := range stages {
		pts := make([]curvePoint, len(cb.levels))
		for i, par := range cb.levels {
			pts[i] = curvePoint{Parallelism: par, EffectiveParallelism: effectivePar(par), NsPerOp: cb.ns[stage][i]}
		}
		out = append(out, finishCurve(cb.workload, stage, pts))
	}
	return out
}

// speedupMinWall/speedupMaxIters bound the measurement loop per grid cell:
// repeat the run until minWall has elapsed or maxIters runs are in, then
// average per stage. Package variables so the emitter tests can shrink them.
var (
	speedupMinWall  = 200 * time.Millisecond
	speedupMaxIters = 8
)

// timeStageRuns repeats step and averages the per-stage wall costs it
// returns. At least one run always executes.
func timeStageRuns(minWall time.Duration, maxIters int, step func(iter int) (map[string]int64, error)) (map[string]float64, int, error) {
	totals := map[string]int64{}
	iters := 0
	start := time.Now()
	for iters == 0 || (time.Since(start) < minWall && iters < maxIters) {
		m, err := step(iters)
		if err != nil {
			return nil, 0, err
		}
		for k, v := range m {
			totals[k] += v
		}
		iters++
	}
	out := make(map[string]float64, len(totals))
	for k, v := range totals {
		out[k] = float64(v) / float64(iters)
	}
	return out, iters, nil
}

// colorCurves measures the coloring pipeline's per-stage scaling on one
// workload: Stats.StageNs (decompose, matchings, scts, palettes, donate,
// slackgen, sparse, lowdegree, fallback, exchange — whichever the path ran)
// plus end-to-end wall, at every grid level. The colorings are byte-identical
// across levels (the parwork determinism contract), so the curves measure
// wall-clock only.
func colorCurves(w benchwork.ColorWorkload, h *graph.Graph, seed uint64, levels []int) ([]speedupCurve, error) {
	params := w.Params(h.N())
	cb := newCurveBuilder(w.Name, levels)
	for li, par := range levels {
		prev := experiments.SetParallelism(par)
		stageNs, _, err := timeStageRuns(speedupMinWall, speedupMaxIters, func(iter int) (map[string]int64, error) {
			t0 := time.Now()
			stats, err := benchwork.RunColor(h, params, seed+uint64(iter))
			if err != nil {
				return nil, err
			}
			m := make(map[string]int64, len(stats.StageNs)+1)
			for k, v := range stats.StageNs {
				m[k] = v
			}
			m["total"] = int64(time.Since(t0))
			return m, nil
		})
		experiments.SetParallelism(prev)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		for st, v := range stageNs {
			cb.add(li, st, v)
		}
	}
	return cb.curves(), nil
}

// acdCurves measures the decomposition's scaling on one workload: the sketch
// waves (ComputeWith) and the profile build, separately timed by
// RunACDOnceTimed, at every grid level.
func acdCurves(w benchwork.ACDWorkload, cg *cluster.CG, ws *acd.Workspace, seed uint64, levels []int) ([]speedupCurve, error) {
	cb := newCurveBuilder(w.Name, levels)
	for li, par := range levels {
		prev := experiments.SetParallelism(par)
		stageNs, _, err := timeStageRuns(speedupMinWall, speedupMaxIters, func(iter int) (map[string]int64, error) {
			_, _, computeNs, profileNs, err := benchwork.RunACDOnceTimed(cg, w.Eps, seed+uint64(iter)+1, ws)
			if err != nil {
				return nil, err
			}
			return map[string]int64{
				"decompose": int64(computeNs),
				"profile":   int64(profileNs),
				"total":     int64(computeNs + profileNs),
			}, nil
		})
		experiments.SetParallelism(prev)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		for st, v := range stageNs {
			cb.add(li, st, v)
		}
	}
	return cb.curves(), nil
}

// sketchCollectCurves measures the fill+collect wave — the parallel CSR fold
// at the bottom of every decomposition — on one sketch workload.
func sketchCollectCurves(w benchwork.SketchWorkload, seed uint64, levels []int) ([]speedupCurve, error) {
	h, err := w.Build()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	cg, err := benchwork.NewSketchInstance(h, seed)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	trials, err := benchwork.SketchTrials(w.Xi, h.N())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	eng := sketch.NewEngine(sketch.MaxKernel{})
	// Warm the arenas so the curve measures the reuse steady state.
	if _, err := benchwork.RunSketchWave(cg, eng, trials, seed); err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	cb := newCurveBuilder(w.Name, levels)
	for li, par := range levels {
		prev := experiments.SetParallelism(par)
		stageNs, _, err := timeStageRuns(speedupMinWall, speedupMaxIters, func(iter int) (map[string]int64, error) {
			t0 := time.Now()
			if _, err := benchwork.RunSketchWave(cg, eng, trials, seed+uint64(iter)+1); err != nil {
				return nil, err
			}
			return map[string]int64{"collect": int64(time.Since(t0))}, nil
		})
		experiments.SetParallelism(prev)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		for st, v := range stageNs {
			cb.add(li, st, v)
		}
	}
	return cb.curves(), nil
}

// shardExchangeCurves measures the partitioned decomposition at two shards:
// total sharded wall plus the boundary-exchange share (ExchangeNs), at every
// grid level. The engine is rebuilt per level because pool shares split from
// the parallelism knob at construction.
func shardExchangeCurves(w benchwork.ACDWorkload, seed uint64, levels []int) ([]speedupCurve, error) {
	h, err := w.Build()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	sg, err := graph.NewShardedGraph(h, 2)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	cg, err := benchwork.NewACDInstance(h, seed)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	ws := acd.NewWorkspace()
	cb := newCurveBuilder(w.Name+"/shards=2", levels)
	for li, par := range levels {
		prev := experiments.SetParallelism(par)
		se := shard.NewEngine(sg, sketch.MaxKernel{})
		stageNs, _, err := timeStageRuns(speedupMinWall, speedupMaxIters, func(iter int) (map[string]int64, error) {
			se.ResetStats()
			t0 := time.Now()
			if _, _, err := benchwork.RunACDShardedOnce(cg, se, w.Eps, seed, ws); err != nil {
				return nil, err
			}
			return map[string]int64{
				"sharded-total": int64(time.Since(t0)),
				"exchange":      se.Stats.ExchangeNs,
			}, nil
		})
		experiments.SetParallelism(prev)
		if err != nil {
			return nil, fmt.Errorf("%s: shards=2: %w", w.Name, err)
		}
		for st, v := range stageNs {
			cb.add(li, st, v)
		}
	}
	return cb.curves(), nil
}

// speedupHeadline summarizes one workload's end-to-end curve: the serial
// cost, the best-scaling grid point, and — when the grid has it — the
// speedup at parallelism 4 (the acceptance lens of the multi-core story).
type speedupHeadline struct {
	Workload        string  `json:"workload"`
	Stage           string  `json:"stage"`
	SerialNsPerOp   float64 `json:"serial_ns_per_op"`
	BestParallelism int     `json:"best_parallelism"`
	BestSpeedup     float64 `json:"best_speedup"`
	SpeedupAtPar4   float64 `json:"speedup_at_parallelism_4,omitempty"`
}

// headlineOf extracts the summary row of an end-to-end curve; ok is false
// when the curve has no usable points.
func headlineOf(c speedupCurve) (speedupHeadline, bool) {
	h := speedupHeadline{Workload: c.Workload, Stage: c.Stage}
	for _, p := range c.Points {
		if p.SpeedupVsSerial <= 0 {
			continue
		}
		if h.SerialNsPerOp == 0 {
			h.SerialNsPerOp = p.NsPerOp * p.SpeedupVsSerial
		}
		if p.SpeedupVsSerial > h.BestSpeedup {
			h.BestSpeedup = p.SpeedupVsSerial
			h.BestParallelism = p.Parallelism
		}
		if p.Parallelism == 4 {
			h.SpeedupAtPar4 = p.SpeedupVsSerial
		}
	}
	return h, h.BestParallelism != 0
}

const speedupBenchNote = "per-stage wall-clock scaling curves; speedup_vs_serial compares each point with the curve's first measurable level; stage outputs are byte-identical at every parallelism level (internal/parwork determinism contract), so the curves move wall-clock only; degraded_grid=true means this box could not schedule more than one effective level — regenerate on a multi-core box for a real surface"

// speedupReport is the BENCH_speedup.json schema: the honest grid actually
// measured, per-stage curves over every pipeline mode (coloring, ACD,
// sketch collect, sharded exchange), and the end-to-end headline rows.
type speedupReport struct {
	Schema          string            `json:"schema"`
	GoMaxProcs      int               `json:"gomaxprocs"`
	NumCPU          int               `json:"num_cpu"`
	Seed            uint64            `json:"seed"`
	MaxN            int               `json:"max_n,omitempty"`
	RequestedLevels []int             `json:"requested_levels"`
	Levels          []int             `json:"levels"`
	DegradedGrid    bool              `json:"degraded_grid,omitempty"`
	Note            string            `json:"note"`
	Curves          []speedupCurve    `json:"curves"`
	Headline        []speedupHeadline `json:"headline,omitempty"`
}

// emitSpeedupBench measures the speedup-curve surface over the standard
// workload matrices (capped at maxN vertices; maxN ≤ 0 = no cap) and writes
// BENCH_speedup.json to path ("-" for stdout). requested is the parallelism
// grid to attempt (nil = 1, 2, 4, NumCPU).
func emitSpeedupBench(path string, seed uint64, maxN int, requested []int) error {
	return emitSpeedupBenchWorkloads(path, seed, maxN, requested,
		benchwork.ColorWorkloads(), benchwork.ACDWorkloads(), benchwork.SketchWorkloads())
}

// emitSpeedupBenchWorkloads is emitSpeedupBench over explicit workload
// matrices, so tests can exercise the emitter on small instances.
func emitSpeedupBenchWorkloads(path string, seed uint64, maxN int, requested []int,
	colorWs []benchwork.ColorWorkload, acdWs []benchwork.ACDWorkload, sketchWs []benchwork.SketchWorkload) error {
	if len(requested) == 0 {
		requested = defaultCurveGrid()
	}
	levels, degraded, err := parGrid("speedupbench", requested...)
	if err != nil {
		return err
	}
	if len(levels) == 0 {
		return fmt.Errorf("speedupbench: no usable parallelism levels in %v", requested)
	}
	report := speedupReport{
		Schema:          "clustercolor/bench-speedup/v1",
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Seed:            seed,
		RequestedLevels: requested,
		Levels:          levels,
		DegradedGrid:    degraded,
		Note:            speedupBenchNote,
	}
	if maxN > 0 {
		report.MaxN = maxN
	}
	addAll := func(cs []speedupCurve) {
		for _, c := range cs {
			report.Curves = append(report.Curves, c)
			if c.Stage == "total" || c.Stage == "sharded-total" {
				if h, ok := headlineOf(c); ok {
					report.Headline = append(report.Headline, h)
				}
			}
		}
	}
	for _, w := range colorWs {
		if maxN > 0 && w.N > maxN {
			continue
		}
		h, err := w.Build()
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		cs, err := colorCurves(w, h, seed, levels)
		if err != nil {
			return err
		}
		addAll(cs)
	}
	var shardW *benchwork.ACDWorkload
	for i, w := range acdWs {
		if maxN > 0 && w.N > maxN {
			continue
		}
		if shardW == nil {
			shardW = &acdWs[i]
		}
		h, err := w.Build()
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		cg, err := benchwork.NewACDInstance(h, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		ws := acd.NewWorkspace()
		// Warm run so the curves measure the workspace-reuse steady state.
		if _, _, err := benchwork.RunACDOnce(cg, w.Eps, seed, ws); err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		cs, err := acdCurves(w, cg, ws, seed, levels)
		if err != nil {
			return err
		}
		addAll(cs)
	}
	for _, w := range sketchWs {
		if maxN > 0 && w.N > maxN {
			continue
		}
		cs, err := sketchCollectCurves(w, seed, levels)
		if err != nil {
			return err
		}
		addAll(cs)
	}
	if shardW != nil {
		cs, err := shardExchangeCurves(*shardW, seed, levels)
		if err != nil {
			return err
		}
		addAll(cs)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// parseParGrid parses a comma-separated parallelism grid ("1,2,4").
func parseParGrid(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid parallelism grid %q: each level must be a positive integer", s)
		}
		out = append(out, v)
	}
	return out, nil
}
