package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"clustercolor/internal/benchwork"
	"clustercolor/internal/graph"
)

// TestEmitSketchBench exercises the BENCH_sketch.json emitter end-to-end on
// a small workload and validates the report schema: all three isolated merge
// kernels measured, one wave record per parallelism level, one estimator
// record per variant with sane wire sizes and errors, and the -sketchn cap
// honored.
func TestEmitSketchBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emitter in short mode")
	}
	small := []benchwork.SketchWorkload{
		{
			Name: "Sketch/GNP/test",
			N:    400,
			Xi:   0.25,
			Build: func() (*graph.Graph, error) {
				return graph.GNP(400, 24.0/400, graph.NewRand(5))
			},
		},
		{
			Name: "Sketch/GNP/capped-out",
			N:    5000,
			Xi:   0.25,
			Build: func() (*graph.Graph, error) {
				t.Fatal("workload above the -sketchn cap must not be built")
				return nil, nil
			},
		},
	}
	path := filepath.Join(t.TempDir(), "BENCH_sketch.json")
	if err := emitSketchBenchWorkloads(path, 7, 1000, small); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report sketchBenchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Schema != "clustercolor/bench-sketch/v1" {
		t.Fatalf("schema = %q", report.Schema)
	}
	if report.MaxN != 1000 {
		t.Fatalf("max_n = %d, want 1000", report.MaxN)
	}
	if len(report.Kernels) != 8 {
		t.Fatalf("got %d kernel records, want 8 (narrow/wide SWAR + generics, paired fold, kmv, fused/materialized estimate)", len(report.Kernels))
	}
	for _, k := range report.Kernels {
		if k.Iterations <= 0 || k.NsPerOp <= 0 {
			t.Fatalf("kernel record has empty measurements: %+v", k)
		}
	}
	// The sweep is the honest grid: every deliverable level of {1,2,4,NumCPU}
	// gets a row, oversubscribed levels are skipped, and each row records an
	// effective parallelism equal to its requested one.
	levels := honestParGrid("test", 1, 2, 4, runtime.NumCPU())
	if len(report.Waves) != len(levels) {
		t.Fatalf("got %d wave records, want %d honest parallelism levels", len(report.Waves), len(levels))
	}
	seenPar := map[int]bool{}
	for _, w := range report.Waves {
		if w.Vertices != 400 || w.Trials <= 0 || w.SketchBits <= 0 {
			t.Fatalf("wave record missing instance shape or payload: %+v", w)
		}
		if w.Iterations <= 0 || w.NsPerOp <= 0 {
			t.Fatalf("wave record has empty measurements: %+v", w)
		}
		if w.EffectiveParallelism != w.Parallelism {
			t.Fatalf("wave record at par %d reports effective %d — oversubscribed cells must be skipped, not emitted",
				w.Parallelism, w.EffectiveParallelism)
		}
		seenPar[w.Parallelism] = true
	}
	for _, par := range levels {
		if !seenPar[par] {
			t.Fatalf("no wave record at parallelism %d", par)
		}
	}
	if len(report.Estimators) != 3 {
		t.Fatalf("got %d estimator records, want 3 (harmonic, threshold, kmv)", len(report.Estimators))
	}
	wantEst := map[string]bool{"max/harmonic": false, "max/threshold": false, "kmv": false}
	for _, e := range report.Estimators {
		if _, ok := wantEst[e.Estimator]; !ok {
			t.Fatalf("unexpected estimator variant %q", e.Estimator)
		}
		wantEst[e.Estimator] = true
		if e.BitsPerVertex <= 0 || e.Width <= 0 {
			t.Fatalf("estimator record missing wire size: %+v", e)
		}
		// Degree ≈ 24 with these widths: every variant should land within
		// 50% mean relative error by a wide margin.
		if e.MeanRelErr <= 0 || e.MeanRelErr > 0.5 {
			t.Fatalf("estimator %s mean relative error %v out of range", e.Estimator, e.MeanRelErr)
		}
	}
	for name, seen := range wantEst {
		if !seen {
			t.Fatalf("estimator variant %s missing from report", name)
		}
	}
}
