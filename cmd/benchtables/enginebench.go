package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"clustercolor/internal/benchwork"
	"clustercolor/internal/experiments"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

// benchResult is one machine-readable benchmark record.
type benchResult struct {
	Name        string `json:"name"`
	Machines    int    `json:"machines,omitempty"`
	Edges       int    `json:"edges,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`
	// EffectiveParallelism is min(Parallelism, GOMAXPROCS) at emission time
	// — the worker count the row actually ran with. Emitters skip grid cells
	// where the two would differ, so on any honest report this equals
	// Parallelism; it is recorded anyway so the artifact states the
	// conditions instead of asking the reader to trust them.
	EffectiveParallelism int     `json:"effective_parallelism,omitempty"`
	Iterations           int     `json:"iterations"`
	NsPerOp              float64 `json:"ns_per_op"`
	AllocsPerOp          int64   `json:"allocs_per_op"`
	BytesPerOp           int64   `json:"bytes_per_op"`
}

// benchReport is the BENCH_engine.json schema.
type benchReport struct {
	Schema     string `json:"schema"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Seed       uint64 `json:"seed"`
	// GridLevels is the honest parallelism grid the runner sweep ran at;
	// DegradedGrid marks a report whose requested grid collapsed to a single
	// effective level on the emitting box.
	GridLevels   []int         `json:"grid_levels"`
	DegradedGrid bool          `json:"degraded_grid,omitempty"`
	Benchmarks   []benchResult `json:"benchmarks"`
}

func record(name string, r testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// engineStepBench measures one engine round (steady-state gossip) under the
// given scheduler.
func engineStepBench(g *graph.Graph, sched network.Scheduler) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		eng, err := network.NewEngineWithScheduler(g, benchwork.GossipMachines(g), 0, sched)
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Step(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// runnerBench measures a cheap cross-section of the experiment battery at
// the given runner parallelism.
func runnerBench(par int, seed uint64) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		prev := experiments.SetParallelism(par)
		defer experiments.SetParallelism(prev)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, run := range benchwork.BatteryCrossSection(seed) {
				if _, err := run(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// emitEngineBench runs the engine and runner benchmarks and writes the
// machine-readable report to path ("-" for stdout).
func emitEngineBench(path string, machines int, seed uint64) error {
	g, err := graph.GNP(machines, 8/float64(machines), graph.NewRand(seed))
	if err != nil {
		return err
	}
	report := benchReport{
		Schema:     "clustercolor/bench-engine/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       seed,
	}
	for _, s := range []struct {
		name  string
		sched network.Scheduler
	}{
		{"EngineStep/pooled", network.SchedulerPooled},
		{"EngineStep/spawn", network.SchedulerSpawn},
	} {
		rec := record(s.name, engineStepBench(g, s.sched))
		rec.Machines = g.N()
		rec.Edges = g.M()
		report.Benchmarks = append(report.Benchmarks, rec)
	}
	// Measure sequential, two workers, the configured -parallel level, and
	// full parallelism — deduplicated, ascending, oversubscribed levels
	// dropped; a grid collapsed to one level annotates the header (or
	// refuses under -require-full-grid).
	levels, degraded, err := parGrid("enginebench", 1, 2, experiments.Parallelism(), runtime.NumCPU())
	if err != nil {
		return err
	}
	report.GridLevels = levels
	report.DegradedGrid = degraded
	for _, par := range levels {
		rec := record(fmt.Sprintf("ExperimentRunner/parallel-%d", par), runnerBench(par, seed))
		rec.Parallelism = par
		rec.EffectiveParallelism = effectivePar(par)
		report.Benchmarks = append(report.Benchmarks, rec)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
