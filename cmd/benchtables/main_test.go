package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustercolor/internal/distsim"
	"clustercolor/internal/experiments"
)

// TestTablesRenderAndCSVRoundTrip smoke-tests the full battery the command
// prints: every table renders with its id banner, and its CSV form parses
// back through encoding/csv into exactly the header plus rows.
func TestTablesRenderAndCSVRoundTrip(t *testing.T) {
	tables, err := experiments.All(41)
	if err != nil {
		t.Fatal(err)
	}
	abl, err := experiments.Ablations(41)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, abl...)
	if len(tables) < 17 {
		t.Fatalf("battery produced only %d tables", len(tables))
	}
	for _, tbl := range tables {
		rendered := tbl.Render()
		if !strings.HasPrefix(rendered, fmt.Sprintf("== %s: ", tbl.ID)) {
			t.Errorf("table %s render missing banner:\n%s", tbl.ID, rendered)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("table %s has no rows", tbl.ID)
			continue
		}
		r := csv.NewReader(strings.NewReader(tbl.CSV()))
		r.Comment = '#'
		records, err := r.ReadAll()
		if err != nil {
			t.Errorf("table %s CSV does not parse: %v", tbl.ID, err)
			continue
		}
		want := append([][]string{tbl.Header}, tbl.Rows...)
		if len(records) != len(want) {
			t.Errorf("table %s CSV has %d records, want %d", tbl.ID, len(records), len(want))
			continue
		}
		for i, rec := range records {
			if len(rec) != len(want[i]) {
				t.Errorf("table %s CSV record %d has %d fields, want %d", tbl.ID, i, len(rec), len(want[i]))
				continue
			}
			for j := range rec {
				if rec[j] != want[i][j] {
					t.Errorf("table %s CSV cell (%d,%d) = %q, want %q", tbl.ID, i, j, rec[j], want[i][j])
				}
			}
		}
	}
}

// TestEmitEngineBench exercises the BENCH_engine.json emitter end-to-end on
// a small graph and validates the report schema.
func TestEmitEngineBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emitter in short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if err := emitEngineBench(path, 400, 7); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Schema != "clustercolor/bench-engine/v1" {
		t.Fatalf("schema = %q", report.Schema)
	}
	names := map[string]benchResult{}
	for _, b := range report.Benchmarks {
		if b.Iterations <= 0 || b.NsPerOp <= 0 {
			t.Errorf("benchmark %s has empty measurements: %+v", b.Name, b)
		}
		names[b.Name] = b
	}
	pooled, ok := names["EngineStep/pooled"]
	if !ok {
		t.Fatal("missing EngineStep/pooled")
	}
	spawn, ok := names["EngineStep/spawn"]
	if !ok {
		t.Fatal("missing EngineStep/spawn")
	}
	if pooled.Machines != 400 || spawn.Machines != 400 {
		t.Fatalf("machine counts: pooled=%d spawn=%d, want 400", pooled.Machines, spawn.Machines)
	}
	if pooled.AllocsPerOp >= spawn.AllocsPerOp {
		t.Errorf("pooled scheduler allocates more than spawn: %d >= %d", pooled.AllocsPerOp, spawn.AllocsPerOp)
	}
	if _, ok := names["ExperimentRunner/parallel-1"]; !ok {
		t.Fatal("missing ExperimentRunner/parallel-1")
	}
}

// TestEmitDistsimBench pins the -distsimbench emitter: a small scenario
// subset produces a schema-tagged report whose primitives all passed the
// conformance assertions (the emitter fails otherwise by construction).
func TestEmitDistsimBench(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_distsim.json")
	if err := emitDistsimBenchScenarios(path, 3, distsim.Matrix()[:1]); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep distsimBenchReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "clustercolor/bench-distsim/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Scenarios) != 1 {
		t.Fatalf("scenarios = %d, want 1", len(rep.Scenarios))
	}
	sc := rep.Scenarios[0]
	if sc.Vertices == 0 || len(sc.Primitives) < 2 || sc.NsPerOp <= 0 {
		t.Fatalf("degenerate record: %+v", sc)
	}
	for _, p := range sc.Primitives {
		if !p.Skipped && int64(p.CommRounds) > p.ChargedRounds {
			t.Fatalf("%s: comm %d > charged %d escaped the harness", p.Primitive, p.CommRounds, p.ChargedRounds)
		}
	}
}
