package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"clustercolor/internal/distsim"
	"clustercolor/internal/experiments"
	"clustercolor/internal/network"
)

// distsimBenchReport is the BENCH_distsim.json schema: one record per
// conformance scenario with the timing of a full machine-granularity
// conformance run and, per primitive, the engine-measured communication
// rounds next to the cost-model charge (plus bandwidth usage). It gives
// engine-level primitive cost a tracked trajectory the way
// BENCH_engine.json does for raw rounds and BENCH_color.json for the
// vertex-level pipeline.
type distsimBenchReport struct {
	Schema      string                 `json:"schema"`
	GoMaxProcs  int                    `json:"gomaxprocs"`
	Parallelism int                    `json:"parallelism"`
	Seed        uint64                 `json:"seed"`
	Scenarios   []distsimScenarioBench `json:"scenarios"`
}

type distsimScenarioBench struct {
	benchResult
	Vertices   int                       `json:"vertices"`
	Dilation   int                       `json:"dilation"`
	Primitives []distsim.PrimitiveReport `json:"primitives"`
}

// emitDistsimBench runs the conformance matrix under the benchmark driver
// and writes the machine-readable report to path ("-" for stdout).
func emitDistsimBench(path string, seed uint64) error {
	return emitDistsimBenchScenarios(path, seed, distsim.Matrix())
}

// emitDistsimBenchScenarios is emitDistsimBench over an explicit scenario
// list, so tests can exercise the emitter on a subset.
func emitDistsimBenchScenarios(path string, seed uint64, scenarios []distsim.Scenario) error {
	report := distsimBenchReport{
		Schema:      "clustercolor/bench-distsim/v1",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Parallelism: experiments.Parallelism(),
		Seed:        seed,
	}
	for _, sc := range scenarios {
		var rep *distsim.Report
		var loopErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := distsim.Conformance(sc, seed, 0, network.SchedulerPooled)
				if err != nil {
					loopErr = fmt.Errorf("%s: %w", sc.Name, err)
					b.Fatal(err)
				}
				if rep == nil {
					rep = got
				}
			}
		})
		if loopErr != nil {
			return loopErr
		}
		if rep == nil {
			return fmt.Errorf("%s: benchmark ran zero iterations", sc.Name)
		}
		rec := distsimScenarioBench{
			benchResult: record("Conformance/"+sc.Name, r),
			Vertices:    rep.Vertices,
			Dilation:    rep.Dilation,
			Primitives:  rep.Primitives,
		}
		rec.Machines = rep.Machines
		report.Scenarios = append(report.Scenarios, rec)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
