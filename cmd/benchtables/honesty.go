package main

import (
	"fmt"
	"os"
	"runtime"
	"sort"
)

// effectivePar returns the worker count a requested parallelism level can
// actually obtain from the scheduler: min(requested, GOMAXPROCS). Recorded
// per row so speedup tables stay honest on machines whose core count is
// below the requested grid.
func effectivePar(requested int) int {
	if mp := runtime.GOMAXPROCS(0); requested > mp {
		return mp
	}
	return requested
}

// honestParGrid deduplicates and sorts a requested parallelism grid,
// dropping every oversubscribed level: a cell requesting more workers than
// GOMAXPROCS re-measures the min(level, GOMAXPROCS) configuration — plus
// goroutine-scheduling overhead — under a dishonest label. Skipped levels
// are logged so a report regenerated on a small machine says what it
// dropped instead of silently shrinking the grid.
func honestParGrid(kind string, requested ...int) []int {
	mp := runtime.GOMAXPROCS(0)
	set := map[int]bool{}
	skipped := map[int]bool{}
	for _, l := range requested {
		if l < 1 {
			continue
		}
		if l > mp {
			if !skipped[l] {
				skipped[l] = true
				fmt.Fprintf(os.Stderr, "benchtables: %s: skipping parallelism %d (oversubscribed: GOMAXPROCS=%d)\n", kind, l, mp)
			}
			continue
		}
		set[l] = true
	}
	out := make([]int, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}
