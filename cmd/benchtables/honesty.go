package main

import (
	"fmt"
	"os"
	"runtime"
	"sort"
)

// effectivePar returns the worker count a requested parallelism level can
// actually obtain from the scheduler: min(requested, GOMAXPROCS). Recorded
// per row so speedup tables stay honest on machines whose core count is
// below the requested grid.
func effectivePar(requested int) int {
	if mp := runtime.GOMAXPROCS(0); requested > mp {
		return mp
	}
	return requested
}

// honestParGrid deduplicates and sorts a requested parallelism grid,
// dropping every oversubscribed level: a cell requesting more workers than
// GOMAXPROCS re-measures the min(level, GOMAXPROCS) configuration — plus
// goroutine-scheduling overhead — under a dishonest label. Skipped levels
// are logged so a report regenerated on a small machine says what it
// dropped instead of silently shrinking the grid.
func honestParGrid(kind string, requested ...int) []int {
	mp := runtime.GOMAXPROCS(0)
	set := map[int]bool{}
	skipped := map[int]bool{}
	for _, l := range requested {
		if l < 1 {
			continue
		}
		if l > mp {
			if !skipped[l] {
				skipped[l] = true
				fmt.Fprintf(os.Stderr, "benchtables: %s: skipping parallelism %d (oversubscribed: GOMAXPROCS=%d)\n", kind, l, mp)
			}
			continue
		}
		set[l] = true
	}
	out := make([]int, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// requireFullGrid is set by -require-full-grid: a degraded parallelism grid
// (see parGrid) becomes a hard error instead of an annotated artifact. CI
// smoke runs set it so a report claiming multi-level measurements can never
// be produced by a box that cannot schedule them.
var requireFullGrid bool

// parGrid is honestParGrid plus the honesty-contract verdict: it returns the
// surviving levels and whether the grid is degraded — the requested grid
// spanned more than one level but collapsed to at most one effective level
// on this box. A degraded grid means the artifact measures no deliverable
// concurrency at all; emitters must either annotate their header with
// degraded_grid=true (the default, with a loud stderr note) or refuse
// outright (under -require-full-grid).
func parGrid(kind string, requested ...int) ([]int, bool, error) {
	levels := honestParGrid(kind, requested...)
	maxReq := 0
	for _, l := range requested {
		if l > maxReq {
			maxReq = l
		}
	}
	degraded := len(levels) <= 1 && maxReq > 1
	if degraded {
		if requireFullGrid {
			return nil, true, fmt.Errorf("%s: requested parallelism grid %v collapses to %v (GOMAXPROCS=%d): refusing to emit a degraded artifact under -require-full-grid",
				kind, requested, levels, runtime.GOMAXPROCS(0))
		}
		fmt.Fprintf(os.Stderr, "benchtables: %s: requested parallelism grid %v collapses to %v (GOMAXPROCS=%d); the artifact will carry degraded_grid=true — regenerate on a multi-core box for a real speedup surface\n",
			kind, requested, levels, runtime.GOMAXPROCS(0))
	}
	return levels, degraded, nil
}

// defaultCurveGrid is the requested parallelism grid of every speedup-curve
// surface: 1, 2, 4, NumCPU.
func defaultCurveGrid() []int { return []int{1, 2, 4, runtime.NumCPU()} }
