package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// compareMeasurementKeys are the per-row fields that carry measurements
// rather than identity: they are what the delta table reports. Every other
// scalar field in a row — name, workload, parallelism, shard count, but also
// derived outputs like sketch_bits and rounds that byte-compatibility pins —
// is part of the row's identity, so a run that silently changed an output
// shows up as a removed+added row pair instead of a quiet timing delta.
var compareMeasurementKeys = map[string]bool{
	"iterations":         true,
	"ns_per_op":          true,
	"allocs_per_op":      true,
	"bytes_per_op":       true,
	"mean_rel_err":       true,
	"speedup_vs_serial":  true,
	"bits_per_vertex":    true,
	"partition_ns":       true,
	"peak_slice_bytes":   true,
	"boundary_cells":     true,
	"ns_per_edge_stream": true,
}

// compareHeaderKeys must match between the two artifacts for a row-by-row
// timing comparison to mean anything.
var compareHeaderKeys = []string{"schema", "gomaxprocs"}

type compareRow struct {
	id     string
	fields map[string]float64
}

// collectCompareRows walks an unmarshalled BENCH_*.json generically and
// returns every object that carries an ns_per_op measurement, keyed by its
// JSON path plus all identity fields. The walk is schema-agnostic so one
// tool covers every artifact family (engine, graph, color, acd, sketch,
// shard, speedup) and future ones for free.
func collectCompareRows(v any, path string, out map[string]compareRow) error {
	switch node := v.(type) {
	case map[string]any:
		if _, ok := node["ns_per_op"]; ok {
			id, fields := compareRowIdentity(node, path)
			if prev, dup := out[id]; dup {
				return fmt.Errorf("two rows share the identity %q (fields %v and %v) — cannot pair them across artifacts", id, prev.fields, fields)
			}
			out[id] = compareRow{id: id, fields: fields}
		}
		// Thread this object's own identity fields into the path so nested
		// rows (e.g. curve points under a workload/stage header) stay
		// distinguishable across sibling groups. The root document's fields
		// are the artifact header — checked separately, not row identity.
		ctx := path
		if path != "" {
			ctx, _ = compareRowIdentity(node, path)
		}
		for k, child := range node {
			if err := collectCompareRows(child, ctx+"/"+k, out); err != nil {
				return err
			}
		}
	case []any:
		for _, child := range node {
			if err := collectCompareRows(child, path, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// compareRowIdentity splits a measurement row into its identity string and
// its numeric measurements.
func compareRowIdentity(row map[string]any, path string) (string, map[string]float64) {
	fields := map[string]float64{}
	idParts := []string{}
	keys := make([]string, 0, len(row))
	for k := range row {
		keys = append(keys, k)
	}
	// Leading keys first so the human-readable part of a row's identity
	// survives column truncation; the rest alphabetical for determinism.
	rank := func(k string) int {
		switch k {
		case "name", "workload":
			return 0
		case "stage":
			return 1
		default:
			return 2
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if ri, rj := rank(keys[i]), rank(keys[j]); ri != rj {
			return ri < rj
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		val := row[k]
		switch tv := val.(type) {
		case float64:
			if compareMeasurementKeys[k] {
				fields[k] = tv
				continue
			}
			idParts = append(idParts, fmt.Sprintf("%s=%v", k, tv))
		case string:
			idParts = append(idParts, fmt.Sprintf("%s=%s", k, tv))
		case bool:
			idParts = append(idParts, fmt.Sprintf("%s=%v", k, tv))
		}
	}
	return path + " " + strings.Join(idParts, " "), fields
}

func loadCompareArtifact(path string) (map[string]any, map[string]compareRow, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, nil, fmt.Errorf("%s: %v", path, err)
	}
	rows := map[string]compareRow{}
	if err := collectCompareRows(doc, "", rows); err != nil {
		return nil, nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("%s: no rows with ns_per_op — not a BENCH_*.json artifact?", path)
	}
	return doc, rows, nil
}

func compareNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// runCompare prints a per-row ns/op and allocs/op delta table between two
// BENCH_*.json artifacts of the same schema, refusing to compare artifacts
// whose schema or gomaxprocs differ (a timing delta across either is
// meaningless). Negative deltas are improvements.
func runCompare(w io.Writer, oldPath, newPath string) error {
	oldDoc, oldRows, err := loadCompareArtifact(oldPath)
	if err != nil {
		return err
	}
	newDoc, newRows, err := loadCompareArtifact(newPath)
	if err != nil {
		return err
	}
	for _, k := range compareHeaderKeys {
		ov, nv := oldDoc[k], newDoc[k]
		if !reflectEqualJSON(ov, nv) {
			return fmt.Errorf("refusing to compare: %s differs (%v vs %v) — rows are only comparable between runs of the same artifact family on the same box", k, ov, nv)
		}
	}
	ids := make([]string, 0, len(oldRows))
	for id := range oldRows {
		if _, ok := newRows[id]; ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	fmt.Fprintf(w, "comparing %s (old) vs %s (new), schema %v, gomaxprocs %v\n\n", oldPath, newPath, oldDoc["schema"], oldDoc["gomaxprocs"])
	fmt.Fprintf(w, "%-84s %12s %12s %8s %22s\n", "row", "old ns/op", "new ns/op", "Δ", "allocs/op old→new")
	for _, id := range ids {
		o, n := oldRows[id].fields, newRows[id].fields
		oldNs, newNs := o["ns_per_op"], n["ns_per_op"]
		delta := "n/a"
		if oldNs > 0 && newNs > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(newNs-oldNs)/oldNs)
		}
		allocs := ""
		oa, oOK := o["allocs_per_op"]
		na, nOK := n["allocs_per_op"]
		if oOK && nOK {
			allocs = fmt.Sprintf("%.0f → %.0f", oa, na)
			if d := na - oa; d != 0 {
				allocs += fmt.Sprintf(" (%+.0f)", d)
			}
		}
		fmt.Fprintf(w, "%-84s %12s %12s %8s %22s\n", compareTrim(id, 84), compareNs(oldNs), compareNs(newNs), delta, allocs)
	}
	orphans := func(have, other map[string]compareRow, label string) {
		var missing []string
		for id := range have {
			if _, ok := other[id]; !ok {
				missing = append(missing, id)
			}
		}
		sort.Strings(missing)
		for _, id := range missing {
			fmt.Fprintf(w, "%s only: %s\n", label, compareTrim(id, 120))
		}
	}
	fmt.Fprintln(w)
	orphans(oldRows, newRows, "old")
	orphans(newRows, oldRows, "new")
	fmt.Fprintf(w, "%d paired rows, %d old-only, %d new-only\n", len(ids), len(oldRows)-len(ids), len(newRows)-len(ids))
	if len(ids) == 0 {
		return fmt.Errorf("no pairable rows between %s and %s", oldPath, newPath)
	}
	return nil
}

func compareTrim(s string, n int) string {
	s = strings.TrimSpace(s)
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// reflectEqualJSON compares two unmarshalled JSON scalars, treating numeric
// values by value (json.Unmarshal yields float64 for every number).
func reflectEqualJSON(a, b any) bool {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if aok && bok {
		return af == bf || (math.IsNaN(af) && math.IsNaN(bf))
	}
	return a == b
}
