package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"clustercolor/internal/benchwork"
	"clustercolor/internal/core"
	"clustercolor/internal/experiments"
)

// colorBenchReport is the BENCH_color.json schema: one record per coloring
// workload with the per-stage round breakdown of a representative run next
// to the timings, followed by the palette micro-benchmark records. It
// tracks the perf trajectory of Color itself the way BENCH_engine.json and
// BENCH_graph.json track the round engine and the generators.
type colorBenchReport struct {
	Schema      string `json:"schema"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Parallelism int    `json:"parallelism"`
	Seed        uint64 `json:"seed"`
	// GridLevels is the honest parallelism grid the speedup curves ran at;
	// DegradedGrid marks a report whose requested grid (1, 2, 4, NumCPU)
	// collapsed to a single effective level on the emitting box — its curves
	// measure no deliverable concurrency.
	GridLevels   []int              `json:"grid_levels"`
	DegradedGrid bool               `json:"degraded_grid,omitempty"`
	Benchmarks   []colorBenchResult `json:"benchmarks"`
	// Curves holds the per-stage speedup curves of every workload over
	// GridLevels (same rows as BENCH_speedup.json, scoped to this mode).
	Curves     []speedupCurve `json:"curves"`
	PaletteOps []benchResult  `json:"palette_ops"`
}

// colorBenchResult augments the shared timing record with what the run did:
// the pipeline taken, the rounds charged in total and per stage, and the
// terminal-fallback share.
type colorBenchResult struct {
	benchResult
	Vertices       int              `json:"vertices"`
	Delta          int              `json:"delta"`
	Path           string           `json:"path"`
	Rounds         int64            `json:"rounds"`
	FallbackRounds int64            `json:"fallback_rounds"`
	PhaseRounds    map[string]int64 `json:"phase_rounds"`
}

// emitColorBench benchmarks every coloring workload plus the palette
// primitives and writes the machine-readable report to path ("-" for
// stdout).
func emitColorBench(path string, seed uint64) error {
	return emitColorBenchWorkloads(path, seed, benchwork.ColorWorkloads(), 100_000)
}

// emitColorBenchWorkloads is emitColorBench over an explicit workload list
// and palette-fixture size, so tests can exercise the emitter on small
// instances.
func emitColorBenchWorkloads(path string, seed uint64, workloads []benchwork.ColorWorkload, fixtureN int) error {
	levels, degraded, err := parGrid("colorbench", defaultCurveGrid()...)
	if err != nil {
		return err
	}
	report := colorBenchReport{
		Schema:       "clustercolor/bench-color/v1",
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Parallelism:  experiments.Parallelism(),
		Seed:         seed,
		GridLevels:   levels,
		DegradedGrid: degraded,
	}
	for _, w := range workloads {
		h, err := w.Build()
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		params := w.Params(h.N())
		var stats *core.Stats
		var loopErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := benchwork.RunColor(h, params, seed+uint64(i))
				if err != nil {
					loopErr = fmt.Errorf("%s: %w", w.Name, err)
					b.Fatal(err)
				}
				if stats == nil {
					stats = s
				}
			}
		})
		if loopErr != nil {
			return loopErr
		}
		if stats == nil {
			return fmt.Errorf("%s: benchmark ran zero iterations", w.Name)
		}
		rec := colorBenchResult{
			benchResult:    record(w.Name, r),
			Vertices:       h.N(),
			Delta:          stats.Delta,
			Path:           stats.Path,
			Rounds:         stats.Rounds,
			FallbackRounds: stats.FallbackRounds,
			PhaseRounds:    stats.PhaseRounds,
		}
		rec.Edges = h.M()
		report.Benchmarks = append(report.Benchmarks, rec)
		curves, err := colorCurves(w, h, seed, levels)
		if err != nil {
			return err
		}
		report.Curves = append(report.Curves, curves...)
	}
	g, col, err := benchwork.PaletteOpsFixture(fixtureN)
	if err != nil {
		return err
	}
	cases, err := benchwork.PaletteOpCases(g, col)
	if err != nil {
		return err
	}
	for _, c := range cases {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Op(i)
			}
		})
		report.PaletteOps = append(report.PaletteOps, record("PaletteOps/"+c.Name, r))
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
