package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"clustercolor/internal/acd"
	"clustercolor/internal/benchwork"
	"clustercolor/internal/experiments"
)

// acdBenchReport is the BENCH_acd.json schema: one record per decomposition
// workload with what the representative run found (dense/sparse/cabal
// counts), what it charged (rounds, peak sketch payload), and the timings.
// It tracks the perf trajectory of the fingerprint→ACD→profile stack the
// way BENCH_color.json tracks the coloring pipeline.
type acdBenchReport struct {
	Schema      string `json:"schema"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Parallelism int    `json:"parallelism"`
	Seed        uint64 `json:"seed"`
	MaxN        int    `json:"max_n,omitempty"`
	// GridLevels is the honest parallelism grid the speedup curves ran at;
	// DegradedGrid marks a report whose requested grid (1, 2, 4, NumCPU)
	// collapsed to a single effective level on the emitting box — its curves
	// measure no deliverable concurrency.
	GridLevels   []int            `json:"grid_levels"`
	DegradedGrid bool             `json:"degraded_grid,omitempty"`
	Benchmarks   []acdBenchResult `json:"benchmarks"`
	// Curves holds the per-stage speedup curves (decompose waves, profile
	// build, total) of every workload over GridLevels.
	Curves []speedupCurve `json:"curves"`
}

// acdBenchResult augments the shared timing record with the decomposition's
// outcome and cost: the instance shape, the peak deviation-encoded sketch
// payload in bits, the rounds charged, and the classification counts.
type acdBenchResult struct {
	benchResult
	Vertices   int   `json:"vertices"`
	Delta      int   `json:"delta"`
	SketchBits int   `json:"sketch_bits"`
	Rounds     int64 `json:"rounds"`
	Cliques    int   `json:"cliques"`
	Cabals     int   `json:"cabals"`
	Sparse     int   `json:"sparse"`
}

// emitACDBench benchmarks every decomposition workload with N ≤ maxN
// (maxN ≤ 0 = no cap) and writes the machine-readable report to path
// ("-" for stdout).
func emitACDBench(path string, seed uint64, maxN int) error {
	return emitACDBenchWorkloads(path, seed, maxN, benchwork.ACDWorkloads())
}

// emitACDBenchWorkloads is emitACDBench over an explicit workload list, so
// tests can exercise the emitter on small instances.
func emitACDBenchWorkloads(path string, seed uint64, maxN int, workloads []benchwork.ACDWorkload) error {
	levels, degraded, err := parGrid("acdbench", defaultCurveGrid()...)
	if err != nil {
		return err
	}
	report := acdBenchReport{
		Schema:       "clustercolor/bench-acd/v1",
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Parallelism:  experiments.Parallelism(),
		Seed:         seed,
		GridLevels:   levels,
		DegradedGrid: degraded,
	}
	if maxN > 0 {
		report.MaxN = maxN
	}
	for _, w := range workloads {
		if maxN > 0 && w.N > maxN {
			continue
		}
		h, err := w.Build()
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		cg, err := benchwork.NewACDInstance(h, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		ws := acd.NewWorkspace()
		// Representative run: collect the decomposition shape and cost
		// before timing (the workspace is warm for the benchmark loop, so
		// allocs/op reflects the arena-reuse steady state).
		roundsBefore := cg.Cost().Rounds()
		d, prof, err := benchwork.RunACDOnce(cg, w.Eps, seed, ws)
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		rec := acdBenchResult{
			Vertices:   h.N(),
			Delta:      h.MaxDegree(),
			SketchBits: cg.Cost().MaxPayload(),
			Rounds:     cg.Cost().Rounds() - roundsBefore,
			Cliques:    len(d.Cliques),
			Sparse:     h.N(),
		}
		for _, cab := range prof.IsCabal {
			if cab {
				rec.Cabals++
			}
		}
		for v := 0; v < h.N(); v++ {
			if !d.IsSparse(v) {
				rec.Sparse--
			}
		}
		var loopErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := benchwork.RunACDOnce(cg, w.Eps, seed+uint64(i)+1, ws); err != nil {
					loopErr = fmt.Errorf("%s: %w", w.Name, err)
					b.Fatal(err)
				}
			}
		})
		if loopErr != nil {
			return loopErr
		}
		rec.benchResult = record(w.Name, r)
		rec.Edges = h.M()
		report.Benchmarks = append(report.Benchmarks, rec)
		curves, err := acdCurves(w, cg, ws, seed, levels)
		if err != nil {
			return err
		}
		report.Curves = append(report.Curves, curves...)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
