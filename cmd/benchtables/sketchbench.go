package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"clustercolor/internal/benchwork"
	"clustercolor/internal/experiments"
	"clustercolor/internal/parwork"
	"clustercolor/internal/sketch"
)

// sketchBenchReport is the BENCH_sketch.json schema: the isolated merge
// kernels (the SWAR word-at-a-time max against its scalar reference, and the
// KMV insertion merge), one collect-wave timing per workload and parallelism
// level, and the wire-size/accuracy profile of every estimator variant. It
// tracks the sketch engine the way BENCH_acd.json tracks the decomposition
// built on top of it.
type sketchBenchReport struct {
	Schema      string `json:"schema"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Parallelism int    `json:"parallelism"`
	Seed        uint64 `json:"seed"`
	MaxN        int    `json:"max_n,omitempty"`
	// GridLevels is the honest parallelism grid the wave sweep ran at;
	// DegradedGrid marks a report whose requested grid (1, 2, 4, NumCPU)
	// collapsed to a single effective level on the emitting box — its waves
	// and curves measure no deliverable concurrency.
	GridLevels   []int              `json:"grid_levels"`
	DegradedGrid bool               `json:"degraded_grid,omitempty"`
	Kernels      []benchResult      `json:"kernels"`
	Waves        []sketchWaveResult `json:"waves"`
	// Curves re-expresses the wave sweep as one collect speedup curve per
	// workload (same rows as BENCH_speedup.json, scoped to this mode).
	Curves     []speedupCurve        `json:"curves"`
	Estimators []sketchEstimatorStat `json:"estimators"`
}

// sketchWaveResult is one collect-wave measurement: fill + parallel CSR fold
// at one parallelism level, with the instance shape and the peak encoded
// payload the wave charged.
type sketchWaveResult struct {
	benchResult
	Vertices   int `json:"vertices"`
	Trials     int `json:"trials"`
	SketchBits int `json:"sketch_bits"`
}

// sketchEstimatorStat profiles one estimator variant on one workload's wave
// output: mean encoded row size (bits/vertex) and mean relative error
// against exact degrees.
type sketchEstimatorStat struct {
	Workload      string  `json:"workload"`
	Kernel        string  `json:"kernel"`
	Estimator     string  `json:"estimator"`
	Width         int     `json:"width"`
	BitsPerVertex float64 `json:"bits_per_vertex"`
	MeanRelErr    float64 `json:"mean_rel_err"`
}

// mergeBench times one merge function on arena-aligned rows filled by fill.
func mergeBench[C sketch.Cell](width int, fill func(row []C, rowSeed uint64), merge func(dst, src []C)) testing.BenchmarkResult {
	var a sketch.Arena[C]
	a.Reset(2, width)
	fill(a.Row(0), parwork.RowSeed(1, 0))
	fill(a.Row(1), parwork.RowSeed(1, 1))
	dst, src := a.Row(0), a.Row(1)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(2 * width))
		for i := 0; i < b.N; i++ {
			merge(dst, src)
		}
	})
}

// mergePairBench times the paired fold (dst = dst ⊔ a ⊔ b) the collect wave
// uses to keep two source-row miss streams in flight.
func mergePairBench(width int) testing.BenchmarkResult {
	var a sketch.Arena[int8]
	a.Reset(3, width)
	k := sketch.MaxKernel{}
	for i := 0; i < 3; i++ {
		k.Fill(a.Row(i), parwork.RowSeed(1, i))
	}
	dst, x, y := a.Row(0), a.Row(1), a.Row(2)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(3 * width))
		for i := 0; i < b.N; i++ {
			sketch.MergeMax8Pair(dst, x, y)
		}
	})
}

// benchSink keeps estimator results observable so the benched calls cannot be
// dead-code eliminated.
var benchSink float64

// estimateMergedBench times estimating the union of two max-kernel rows:
// fused (EstimateMerged) or through a materialized scratch merge — the
// per-edge baseline the fused kernel replaced in the buddy predicate.
func estimateMergedBench(width int, fused bool) testing.BenchmarkResult {
	var a sketch.Arena[int8]
	a.Reset(2, width)
	sketch.MaxKernel{}.Fill(a.Row(0), parwork.RowSeed(1, 0))
	sketch.MaxKernel{}.Fill(a.Row(1), parwork.RowSeed(1, 1))
	x, y := a.Row(0), a.Row(1)
	var sc sketch.Scratch[int8]
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if fused {
				benchSink += sc.Est.EstimateMerged(x, y)
			} else {
				benchSink += sc.Est.Estimate(sc.MergeTwo(x, y))
			}
		}
	})
}

// emitSketchBench benchmarks the sketch engine over every workload with
// N ≤ maxN (maxN ≤ 0 = no cap) and writes the machine-readable report to
// path ("-" for stdout).
func emitSketchBench(path string, seed uint64, maxN int) error {
	return emitSketchBenchWorkloads(path, seed, maxN, benchwork.SketchWorkloads())
}

// emitSketchBenchWorkloads is emitSketchBench over an explicit workload
// list, so tests can exercise the emitter on small instances.
func emitSketchBenchWorkloads(path string, seed uint64, maxN int, workloads []benchwork.SketchWorkload) error {
	report := sketchBenchReport{
		Schema:      "clustercolor/bench-sketch/v1",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Parallelism: experiments.Parallelism(),
		Seed:        seed,
	}
	if maxN > 0 {
		report.MaxN = maxN
	}
	// Isolated merge kernels at the row width the decomposition actually
	// runs (ξ = 0.125 at n = 10⁵) — the SWAR/scalar ratio is the kernel's
	// whole reason to exist, so both sides go in the report.
	t0, err := benchwork.SketchTrials(0.125, 100_000)
	if err != nil {
		return err
	}
	kmvWidth := sketch.KMVWidthFor(0.125)
	// The int16 reference kernels (kept for the fingerprint adapter's wide
	// rows) bench on the same geometric values, widened from the narrow fill.
	wideFill := func(row []int16, rowSeed uint64) {
		narrow := make([]int8, len(row))
		sketch.MaxKernel{}.Fill(narrow, rowSeed)
		for i, v := range narrow {
			row[i] = int16(v)
		}
	}
	report.Kernels = append(report.Kernels,
		record(fmt.Sprintf("MergeMax8/t=%d", t0), mergeBench(t0, sketch.MaxKernel{}.Fill, sketch.MergeMax8)),
		record(fmt.Sprintf("MergeMax8Generic/t=%d", t0), mergeBench(t0, sketch.MaxKernel{}.Fill, sketch.MergeMax8Generic)),
		record(fmt.Sprintf("MergeMax8Pair/t=%d", t0), mergePairBench(t0)),
		record(fmt.Sprintf("MergeMax/t=%d", t0), mergeBench(t0, wideFill, sketch.MergeMax)),
		record(fmt.Sprintf("MergeMaxGeneric/t=%d", t0), mergeBench(t0, wideFill, sketch.MergeMaxGeneric)),
		record(fmt.Sprintf("MergeKMV/k=%d", kmvWidth), mergeBench(kmvWidth, sketch.KMVKernel{}.Fill, sketch.MergeKMV)),
		record(fmt.Sprintf("EstimateMerged/t=%d", t0), estimateMergedBench(t0, true)),
		record(fmt.Sprintf("EstimateMergeTwo/t=%d", t0), estimateMergedBench(t0, false)),
	)
	// Parallelism sweep: 1, 2, 4, NumCPU — deduplicated, sorted, and with
	// oversubscribed levels skipped (logged) so every wave row measures a
	// worker count the scheduler can deliver. A grid collapsed to one level
	// annotates the report header (or refuses under -require-full-grid).
	levels, degraded, err := parGrid("sketchbench", defaultCurveGrid()...)
	if err != nil {
		return err
	}
	report.GridLevels = levels
	report.DegradedGrid = degraded
	for _, w := range workloads {
		if maxN > 0 && w.N > maxN {
			continue
		}
		h, err := w.Build()
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		cg, err := benchwork.NewSketchInstance(h, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		trials, err := benchwork.SketchTrials(w.Xi, h.N())
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		eng := sketch.NewEngine[int8](sketch.MaxKernel{})
		// Representative run: capture the charged payload and warm the
		// arenas so allocs/op reflects the reuse steady state.
		maxBits, err := benchwork.RunSketchWave(cg, eng, trials, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		waveNs := make([]float64, len(levels))
		for li, par := range levels {
			prev := experiments.SetParallelism(par)
			var loopErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := benchwork.RunSketchWave(cg, eng, trials, seed+uint64(i)+1); err != nil {
						loopErr = fmt.Errorf("%s: %w", w.Name, err)
						b.Fatal(err)
					}
				}
			})
			experiments.SetParallelism(prev)
			if loopErr != nil {
				return loopErr
			}
			rec := sketchWaveResult{
				benchResult: record(fmt.Sprintf("%s/p=%d", w.Name, par), r),
				Vertices:    h.N(),
				Trials:      trials,
				SketchBits:  maxBits,
			}
			rec.Edges = h.M()
			rec.Parallelism = par
			rec.EffectiveParallelism = effectivePar(par)
			waveNs[li] = rec.NsPerOp
			report.Waves = append(report.Waves, rec)
		}
		report.Curves = append(report.Curves, curveFromNs(w.Name, "collect", levels, waveNs))
		// Estimator profile: rerun the plain-neighborhood wave so the rows
		// match what the parallelism sweep's last iteration may have
		// overwritten, then sweep each variant.
		if _, err := benchwork.RunSketchWave(cg, eng, trials, seed); err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		var harmonic sketch.MaxEstimator[int8]
		var threshold sketch.ThresholdEstimator[int8]
		for _, est := range []sketch.Estimator[int8]{&harmonic, &threshold} {
			s := benchwork.SketchEstimatorStats(h, eng, est)
			report.Estimators = append(report.Estimators, sketchEstimatorStat{
				Workload:      w.Name,
				Kernel:        eng.Kernel.Name(),
				Estimator:     est.Name(),
				Width:         trials,
				BitsPerVertex: s.BitsPerVertex,
				MeanRelErr:    s.MeanRelErr,
			})
		}
		kmvEng := sketch.NewEngine[int16](sketch.KMVKernel{})
		if _, err := benchwork.RunSketchWave(cg, kmvEng, kmvWidth, seed); err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		s := benchwork.SketchEstimatorStats(h, kmvEng, sketch.KMVEstimator{})
		report.Estimators = append(report.Estimators, sketchEstimatorStat{
			Workload:      w.Name,
			Kernel:        kmvEng.Kernel.Name(),
			Estimator:     sketch.KMVEstimator{}.Name(),
			Width:         kmvWidth,
			BitsPerVertex: s.BitsPerVertex,
			MeanRelErr:    s.MeanRelErr,
		})
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
