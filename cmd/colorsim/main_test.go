package main

import (
	"testing"

	"clustercolor/internal/graph"
)

func TestMakeInstanceKinds(t *testing.T) {
	tests := []struct {
		kind  string
		wantN int
	}{
		{kind: "gnp", wantN: 50},
		{kind: "clique", wantN: 50},
		{kind: "planted", wantN: 2*20 + 20},
		{kind: "cabal", wantN: 2 * 20},
		{kind: "power2", wantN: 50},
	}
	for _, tt := range tests {
		t.Run(tt.kind, func(t *testing.T) {
			h, err := makeInstance(tt.kind, 50, 0.1, 2, 20, 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			if h.N() != tt.wantN {
				t.Fatalf("N = %d, want %d", h.N(), tt.wantN)
			}
		})
	}
	if _, err := makeInstance("bogus", 10, 0.1, 1, 1, 1, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestParseTopology(t *testing.T) {
	tests := []struct {
		in   string
		want graph.ClusterTopology
	}{
		{in: "singleton", want: graph.TopologySingleton},
		{in: "star", want: graph.TopologyStar},
		{in: "path", want: graph.TopologyPath},
		{in: "tree", want: graph.TopologyTree},
	}
	for _, tt := range tests {
		got, err := parseTopology(tt.in)
		if err != nil || got != tt.want {
			t.Fatalf("parseTopology(%q) = %v, %v", tt.in, got, err)
		}
	}
	if _, err := parseTopology("mesh"); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestDefaultBandwidthGrowth(t *testing.T) {
	if defaultBandwidth(100) >= defaultBandwidth(100000) {
		t.Fatal("bandwidth not growing with machine count")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Exercise run() through the flag defaults by calling the pieces it
	// wires: a small instance must color and verify.
	h, err := makeInstance("gnp", 60, 0.1, 0, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxDegree() < 1 {
		t.Fatal("degenerate instance")
	}
}
