package main

import (
	"testing"

	"clustercolor/internal/graph"
)

func testSpec(kind string) instanceSpec {
	return instanceSpec{
		kind: kind, n: 50, p: 0.1, radius: 0.15, attach: 3, degree: 4,
		cliques: 2, cliqueSize: 20, external: 2, seed: 1,
	}
}

func TestMakeInstanceKinds(t *testing.T) {
	tests := []struct {
		kind  string
		wantN int
	}{
		{kind: "gnp", wantN: 50},
		{kind: "clique", wantN: 50},
		{kind: "planted", wantN: 2*20 + 20},
		{kind: "cabal", wantN: 2 * 20},
		{kind: "power2", wantN: 50},
		{kind: "geometric", wantN: 50},
		{kind: "ba", wantN: 50},
		{kind: "regular", wantN: 50},
		{kind: "ringcliques", wantN: 2 * 20},
		{kind: "tree", wantN: 50},
	}
	for _, tt := range tests {
		t.Run(tt.kind, func(t *testing.T) {
			h, err := makeInstance(testSpec(tt.kind))
			if err != nil {
				t.Fatal(err)
			}
			if h.N() != tt.wantN {
				t.Fatalf("N = %d, want %d", h.N(), tt.wantN)
			}
		})
	}
	if _, err := makeInstance(testSpec("bogus")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestMakeInstanceRejectsBadParams(t *testing.T) {
	bad := testSpec("gnp")
	bad.p = 1.5
	if _, err := makeInstance(bad); err == nil {
		t.Fatal("gnp p=1.5 accepted")
	}
	badGeo := testSpec("geometric")
	badGeo.radius = -0.1
	if _, err := makeInstance(badGeo); err == nil {
		t.Fatal("negative radius accepted")
	}
	badReg := testSpec("regular")
	badReg.n = 5
	badReg.degree = 3 // odd n·d
	if _, err := makeInstance(badReg); err == nil {
		t.Fatal("odd n·d accepted for regular")
	}
}

func TestParseTopology(t *testing.T) {
	tests := []struct {
		in   string
		want graph.ClusterTopology
	}{
		{in: "singleton", want: graph.TopologySingleton},
		{in: "star", want: graph.TopologyStar},
		{in: "path", want: graph.TopologyPath},
		{in: "tree", want: graph.TopologyTree},
	}
	for _, tt := range tests {
		got, err := parseTopology(tt.in)
		if err != nil || got != tt.want {
			t.Fatalf("parseTopology(%q) = %v, %v", tt.in, got, err)
		}
	}
	if _, err := parseTopology("mesh"); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestDefaultBandwidthGrowth(t *testing.T) {
	if defaultBandwidth(100) >= defaultBandwidth(100000) {
		t.Fatal("bandwidth not growing with machine count")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Exercise run() through the flag defaults by calling the pieces it
	// wires: a small instance must color and verify.
	spec := testSpec("gnp")
	spec.n = 60
	spec.seed = 3
	h, err := makeInstance(spec)
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxDegree() < 1 {
		t.Fatal("degenerate instance")
	}
}
