// Command colorsim runs the cluster-graph (Δ+1)-coloring algorithm on a
// generated instance and prints the verified result with its round/bandwidth
// accounting.
//
// Usage:
//
//	colorsim -kind gnp -n 500 -p 0.05 -topology star -machines 4 -seed 7
//	colorsim -kind cabal -cliques 3 -cliquesize 60 -external 2
//	colorsim -kind geometric -n 2000 -radius 0.04
//	colorsim -kind ba -n 1000 -attach 4
//	colorsim -kind regular -n 1000 -degree 8
//	colorsim -kind ringcliques -cliques 8 -cliquesize 30
package main

import (
	"flag"
	"fmt"
	"os"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/core"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "colorsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind       = flag.String("kind", "gnp", "instance kind: gnp | planted | cabal | clique | power2 | geometric | ba | regular | ringcliques | tree")
		n          = flag.Int("n", 400, "vertices (gnp, clique, power2, geometric, ba, regular, tree)")
		p          = flag.Float64("p", 0.05, "edge probability (gnp, power2)")
		radius     = flag.Float64("radius", 0.1, "connection radius (geometric)")
		attach     = flag.Int("attach", 4, "edges per new vertex (ba)")
		degree     = flag.Int("degree", 6, "vertex degree (regular)")
		cliques    = flag.Int("cliques", 3, "planted/cabal/ringcliques block count")
		cliqueSize = flag.Int("cliquesize", 50, "planted/cabal/ringcliques block size")
		external   = flag.Int("external", 3, "planted/cabal external degree")
		topology   = flag.String("topology", "singleton", "cluster wiring: singleton | star | path | tree")
		machines   = flag.Int("machines", 1, "machines per cluster")
		bandwidth  = flag.Int("bandwidth", 0, "per-link bits per round (0 = Θ(log n) default)")
		seed       = flag.Uint64("seed", 1, "random seed")
		verbose    = flag.Bool("v", false, "print the per-phase round breakdown")
	)
	flag.Parse()

	h, err := makeInstance(instanceSpec{
		kind: *kind, n: *n, p: *p, radius: *radius, attach: *attach,
		degree: *degree, cliques: *cliques, cliqueSize: *cliqueSize,
		external: *external, seed: *seed,
	})
	if err != nil {
		return err
	}
	topo, err := parseTopology(*topology)
	if err != nil {
		return err
	}
	size := *machines
	if topo == graph.TopologySingleton {
		size = 1
	}
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: topo, MachinesPerCluster: size}, graph.NewRand(*seed+1))
	if err != nil {
		return err
	}
	bw := *bandwidth
	if bw == 0 {
		bw = defaultBandwidth(exp.G.N())
	}
	cost, err := network.NewCostModel(bw)
	if err != nil {
		return err
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		return err
	}
	params := core.DefaultParams(h.N())
	params.Seed = *seed
	col, stats, err := core.Color(cg, params)
	if err != nil {
		return err
	}
	if err := coloring.VerifyComplete(h, col); err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	fmt.Printf("instance: kind=%s n=%d m=%d Δ=%d\n", *kind, h.N(), h.M(), h.MaxDegree())
	fmt.Printf("network:  machines=%d links=%d dilation=%d bandwidth=%d bits\n",
		exp.G.N(), exp.G.M(), stats.Dilation, bw)
	fmt.Printf("result:   colors=%d (≤ Δ+1=%d)  VERIFIED PROPER\n", col.CountColors(), h.MaxDegree()+1)
	fmt.Printf("path:     %s  cliques=%d cabals=%d sparse=%d\n",
		stats.Path, stats.NumCliques, stats.NumCabals, stats.NumSparse)
	fmt.Printf("rounds:   total=%d fallback=%d maxPayload=%d bits\n",
		stats.Rounds, stats.FallbackRounds, stats.MaxPayloadBits)
	fmt.Printf("stages:   sparse=%d nonCabal=%d cabal=%d matching=%d putAside(free=%d don=%d fb=%d)\n",
		stats.SparseColored, stats.NonCabalColored, stats.CabalColored, stats.MatchingRepeats,
		stats.PutAsideFree, stats.PutAsideDonated, stats.PutAsideFallback)
	if *verbose {
		fmt.Println(cost.Summary())
	}
	return nil
}

// instanceSpec carries every generator knob the CLI exposes.
type instanceSpec struct {
	kind       string
	n          int
	p          float64
	radius     float64
	attach     int
	degree     int
	cliques    int
	cliqueSize int
	external   int
	seed       uint64
}

func makeInstance(spec instanceSpec) (*graph.Graph, error) {
	rng := graph.NewRand(spec.seed)
	switch spec.kind {
	case "gnp":
		return graph.GNP(spec.n, spec.p, rng)
	case "clique":
		if !graph.CliqueFits(spec.n) {
			return nil, fmt.Errorf("graph: Clique(%d) exceeds the graph substrate's edge capacity", spec.n)
		}
		return graph.Clique(spec.n), nil
	case "planted":
		h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
			NumCliques:     spec.cliques,
			CliqueSize:     spec.cliqueSize,
			DropFraction:   0.04,
			ExternalDegree: spec.external,
			SparseN:        spec.cliqueSize,
			SparseP:        0.1,
		}, rng)
		return h, err
	case "cabal":
		h, _, err := graph.PlantedCabals(graph.CabalSpec{
			NumCliques: spec.cliques,
			CliqueSize: spec.cliqueSize,
			External:   spec.external,
		}, rng)
		return h, err
	case "power2":
		h, err := graph.GNP(spec.n, spec.p, rng)
		if err != nil {
			return nil, err
		}
		return h.Power(2)
	case "geometric":
		h, _, err := graph.RandomGeometric(spec.n, spec.radius, rng)
		return h, err
	case "ba":
		return graph.BarabasiAlbert(spec.n, spec.attach, rng)
	case "regular":
		return graph.RandomRegular(spec.n, spec.degree, rng)
	case "ringcliques":
		return graph.RingOfCliques(spec.cliques, spec.cliqueSize)
	case "tree":
		return graph.RandomTree(spec.n, rng), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", spec.kind)
	}
}

func parseTopology(s string) (graph.ClusterTopology, error) {
	switch s {
	case "singleton":
		return graph.TopologySingleton, nil
	case "star":
		return graph.TopologyStar, nil
	case "path":
		return graph.TopologyPath, nil
	case "tree":
		return graph.TopologyTree, nil
	default:
		return 0, fmt.Errorf("unknown topology %q", s)
	}
}

func defaultBandwidth(machines int) int {
	bits := 1
	for 1<<bits < machines+1 {
		bits++
	}
	return 2*bits + 16
}
