// Command colorsim runs the cluster-graph (Δ+1)-coloring algorithm on a
// generated instance and prints the verified result with its round/bandwidth
// accounting.
//
// Usage:
//
//	colorsim -kind gnp -n 500 -p 0.05 -topology star -machines 4 -seed 7
//	colorsim -kind cabal -cliques 3 -cliquesize 60 -external 2
package main

import (
	"flag"
	"fmt"
	"os"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/core"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "colorsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind       = flag.String("kind", "gnp", "instance kind: gnp | planted | cabal | clique | power2")
		n          = flag.Int("n", 400, "vertices (gnp, clique, power2)")
		p          = flag.Float64("p", 0.05, "edge probability (gnp, power2)")
		cliques    = flag.Int("cliques", 3, "planted/cabal block count")
		cliqueSize = flag.Int("cliquesize", 50, "planted/cabal block size")
		external   = flag.Int("external", 3, "planted/cabal external degree")
		topology   = flag.String("topology", "singleton", "cluster wiring: singleton | star | path | tree")
		machines   = flag.Int("machines", 1, "machines per cluster")
		bandwidth  = flag.Int("bandwidth", 0, "per-link bits per round (0 = Θ(log n) default)")
		seed       = flag.Uint64("seed", 1, "random seed")
		verbose    = flag.Bool("v", false, "print the per-phase round breakdown")
	)
	flag.Parse()

	h, err := makeInstance(*kind, *n, *p, *cliques, *cliqueSize, *external, *seed)
	if err != nil {
		return err
	}
	topo, err := parseTopology(*topology)
	if err != nil {
		return err
	}
	size := *machines
	if topo == graph.TopologySingleton {
		size = 1
	}
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: topo, MachinesPerCluster: size}, graph.NewRand(*seed+1))
	if err != nil {
		return err
	}
	bw := *bandwidth
	if bw == 0 {
		bw = defaultBandwidth(exp.G.N())
	}
	cost, err := network.NewCostModel(bw)
	if err != nil {
		return err
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		return err
	}
	params := core.DefaultParams(h.N())
	params.Seed = *seed
	col, stats, err := core.Color(cg, params)
	if err != nil {
		return err
	}
	if err := coloring.VerifyComplete(h, col); err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	fmt.Printf("instance: kind=%s n=%d m=%d Δ=%d\n", *kind, h.N(), h.M(), h.MaxDegree())
	fmt.Printf("network:  machines=%d links=%d dilation=%d bandwidth=%d bits\n",
		exp.G.N(), exp.G.M(), stats.Dilation, bw)
	fmt.Printf("result:   colors=%d (≤ Δ+1=%d)  VERIFIED PROPER\n", col.CountColors(), h.MaxDegree()+1)
	fmt.Printf("path:     %s  cliques=%d cabals=%d sparse=%d\n",
		stats.Path, stats.NumCliques, stats.NumCabals, stats.NumSparse)
	fmt.Printf("rounds:   total=%d fallback=%d maxPayload=%d bits\n",
		stats.Rounds, stats.FallbackRounds, stats.MaxPayloadBits)
	fmt.Printf("stages:   sparse=%d nonCabal=%d cabal=%d matching=%d putAside(free=%d don=%d fb=%d)\n",
		stats.SparseColored, stats.NonCabalColored, stats.CabalColored, stats.MatchingRepeats,
		stats.PutAsideFree, stats.PutAsideDonated, stats.PutAsideFallback)
	if *verbose {
		fmt.Println(cost.Summary())
	}
	return nil
}

func makeInstance(kind string, n int, p float64, cliques, cliqueSize, external int, seed uint64) (*graph.Graph, error) {
	rng := graph.NewRand(seed)
	switch kind {
	case "gnp":
		return graph.GNP(n, p, rng), nil
	case "clique":
		return graph.Clique(n), nil
	case "planted":
		h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
			NumCliques:     cliques,
			CliqueSize:     cliqueSize,
			DropFraction:   0.04,
			ExternalDegree: external,
			SparseN:        cliqueSize,
			SparseP:        0.1,
		}, rng)
		return h, err
	case "cabal":
		h, _, err := graph.PlantedCabals(graph.CabalSpec{
			NumCliques: cliques,
			CliqueSize: cliqueSize,
			External:   external,
		}, rng)
		return h, err
	case "power2":
		return graph.GNP(n, p, rng).Power(2), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

func parseTopology(s string) (graph.ClusterTopology, error) {
	switch s {
	case "singleton":
		return graph.TopologySingleton, nil
	case "star":
		return graph.TopologyStar, nil
	case "path":
		return graph.TopologyPath, nil
	case "tree":
		return graph.TopologyTree, nil
	default:
		return 0, fmt.Errorf("unknown topology %q", s)
	}
}

func defaultBandwidth(machines int) int {
	bits := 1
	for 1<<bits < machines+1 {
		bits++
	}
	return 2*bits + 16
}
